//! Property tests for the coordinator ↔ worker wire contract: every
//! payload the process-pool transport can ship — jobs fresh or
//! checkpointed, results with deltas, checkpoints, outputs and telemetry
//! counters — survives a frame round trip byte-for-byte equal. This is
//! the serialization half of the transport-equivalence guarantee: if
//! round-tripping ever lost information, `process_pool.rs`'s
//! bit-identity tests would fail only for the affected field, whereas
//! these pin the wire layer in isolation.

use llm4fp::{ApproachKind, CampaignConfig};
use llm4fp_orchestrator::wire::{read_frame, write_frame, ShardJob, ShardJobResult, WireRequest};
use llm4fp_orchestrator::{plan_shards, run_shard, ShardCtx, ShardRunner};
use llm4fp_telemetry::{TelemetryHub, TelemetrySpec};
use proptest::prelude::*;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let mut buf = Vec::new();
    write_frame(&mut buf, value).expect("frame encodes");
    read_frame(&mut buf.as_slice()).expect("frame decodes")
}

fn config(approach: usize, budget: usize, seed: u64) -> CampaignConfig {
    let approach = ApproachKind::ALL[approach % ApproachKind::ALL.len()];
    CampaignConfig::new(approach).with_budget(budget).with_seed(seed).with_threads(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fresh_jobs_round_trip(
        seed in any::<u64>(),
        approach in 0usize..8,
        budget in 1usize..12,
        shards in 1usize..5,
        segment in 0usize..12,
        finish in any::<bool>(),
        slots in 1usize..9,
        telemetry in any::<bool>(),
    ) {
        let config = config(approach, budget, seed);
        for spec in plan_shards(&config, shards) {
            let job = ShardJob {
                config: config.clone(),
                spec,
                segment,
                finish,
                checkpoint: None,
                process_slots: slots,
                telemetry,
            };
            let request = WireRequest::Job(Box::new(job));
            prop_assert_eq!(round_trip(&request), request);
        }
    }

    #[test]
    fn checkpointed_jobs_round_trip(
        seed in any::<u64>(),
        approach in 0usize..8,
        budget in 2usize..8,
        segment in 1usize..4,
    ) {
        // A mid-campaign job carries real runner state: pause an actual
        // runner after a partial segment and ship its checkpoint.
        let config = config(approach, budget, seed);
        let spec = plan_shards(&config, 2)[1];
        let mut runner = ShardRunner::new(&config, spec, None);
        runner.run_segment(segment.min(spec.budget), |_| {});
        let job = ShardJob {
            config: config.clone(),
            spec,
            segment: spec.budget - segment.min(spec.budget),
            finish: true,
            checkpoint: Some(runner.checkpoint()),
            process_slots: 1,
            telemetry: false,
        };
        let request = WireRequest::Job(Box::new(job));
        prop_assert_eq!(round_trip(&request), request);
    }

    #[test]
    fn results_round_trip(
        seed in any::<u64>(),
        approach in 0usize..8,
        budget in 1usize..10,
        with_telemetry in any::<bool>(),
    ) {
        // A finished shard's answer: real output, real counters.
        let config = config(approach, budget, seed);
        let spec = plan_shards(&config, 1)[0];
        let hub = TelemetryHub::new(if with_telemetry {
            TelemetrySpec::METRICS
        } else {
            TelemetrySpec::OFF
        });
        let ctx = ShardCtx::new(&config).with_telemetry(hub.lane(0));
        let output = run_shard(&spec, &ctx);
        let result = ShardJobResult {
            index: spec.index,
            delta: output.successful_sources.clone(),
            checkpoint: None,
            output: Some(output),
            telemetry: hub.lane(0).export(),
        };
        prop_assert_eq!(with_telemetry, result.telemetry.is_some());
        prop_assert_eq!(round_trip(&result), result);
    }

    #[test]
    fn paused_results_round_trip(
        seed in any::<u64>(),
        approach in 0usize..8,
        budget in 2usize..8,
        segment in 1usize..4,
    ) {
        // A paused shard's answer: the delta plus the checkpoint that
        // the next epoch's job will carry back out.
        let config = config(approach, budget, seed);
        let spec = plan_shards(&config, 2)[0];
        let mut runner = ShardRunner::new(&config, spec, None);
        let delta = runner.run_segment(segment.min(spec.budget), |_| {});
        let result = ShardJobResult {
            index: spec.index,
            delta,
            checkpoint: Some(runner.checkpoint()),
            output: None,
            telemetry: None,
        };
        prop_assert_eq!(round_trip(&result), result);
    }
}
