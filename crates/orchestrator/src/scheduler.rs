//! Multi-campaign scheduling with a shared worker budget.
//!
//! The paper's evaluation (Tables 2–5) runs four campaigns — one per
//! approach. Running them back to back wastes the pool whenever one
//! campaign's tail shards leave workers idle; the scheduler flattens every
//! campaign's shards into one task list so the pool stays saturated across
//! campaign boundaries.
//!
//! Campaigns whose test context matches — same seed, precision and
//! compiler/level matrix — share one result cache: program inputs are
//! derived from `(seed, program structure)` (see `llm4fp::campaign`), so a
//! cached matrix result is valid for any campaign in the same context, and
//! cross-approach duplicates (Varity and the LLM approaches drawing the
//! same idiom) are only tested once per suite.

use std::sync::Arc;
use std::time::Instant;

use llm4fp::CampaignConfig;
use llm4fp_compiler::{CompilerId, OptLevel};
use llm4fp_difftest::ResultCache;
use llm4fp_fpir::Precision;

use crate::orchestrate::{OrchestratedResult, OrchestratorOptions, RunStats};
use crate::pool::run_indexed;
use crate::shard::{merge_shards, plan_shards, run_shard, ShardSpec};

/// The part of a campaign config that determines differential-testing
/// results for a given program: configs with equal contexts may share a
/// result cache.
#[derive(Debug, Clone, PartialEq)]
struct TestContext {
    seed: u64,
    precision: Precision,
    compilers: Vec<CompilerId>,
    levels: Vec<OptLevel>,
}

impl TestContext {
    fn of(config: &CampaignConfig) -> Self {
        TestContext {
            seed: config.seed,
            precision: config.precision,
            compilers: config.compilers.clone(),
            levels: config.levels.clone(),
        }
    }
}

/// Runs a suite of campaigns concurrently over one worker pool.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    options: OrchestratorOptions,
}

impl Scheduler {
    pub fn new(options: OrchestratorOptions) -> Self {
        Scheduler { options }
    }

    /// Run every campaign, each split into `shards` shards, sharing the
    /// worker pool (and, where sound, the result cache). Results come back
    /// in input order and are bit-identical to orchestrating each campaign
    /// individually with the same shard count.
    ///
    /// Persistence (`options.run_dir`) applies to single-campaign runs via
    /// [`crate::Orchestrator`]; the scheduler itself executes in memory.
    pub fn run_suite(&self, configs: &[CampaignConfig], shards: usize) -> Vec<OrchestratedResult> {
        let start = Instant::now();

        // One cache per distinct test context (None when caching is off).
        let contexts: Vec<TestContext> = configs.iter().map(TestContext::of).collect();
        let caches: Vec<Option<Arc<ResultCache>>> = if self.options.cache {
            let mut distinct: Vec<(TestContext, Arc<ResultCache>)> = Vec::new();
            contexts
                .iter()
                .map(|ctx| {
                    if let Some((_, cache)) = distinct.iter().find(|(c, _)| c == ctx) {
                        Some(Arc::clone(cache))
                    } else {
                        let cache = Arc::new(ResultCache::new());
                        distinct.push((ctx.clone(), Arc::clone(&cache)));
                        Some(cache)
                    }
                })
                .collect()
        } else {
            vec![None; configs.len()]
        };

        // Flatten every campaign's shards into one task list.
        let plans: Vec<Vec<ShardSpec>> =
            configs.iter().map(|config| plan_shards(config, shards)).collect();
        let tasks: Vec<(usize, ShardSpec)> = plans
            .iter()
            .enumerate()
            .flat_map(|(campaign, specs)| specs.iter().map(move |spec| (campaign, *spec)))
            .collect();

        let outputs = run_indexed(tasks.len(), self.options.workers, |task| {
            let (campaign, spec) = &tasks[task];
            let cache = caches[*campaign].clone();
            (*campaign, run_shard(&configs[*campaign], *spec, cache, |_| {}))
        });

        // Regroup by campaign (merge_shards re-sorts by shard index).
        let wall_time = start.elapsed();
        let mut grouped: Vec<Vec<_>> = configs.iter().map(|_| Vec::new()).collect();
        for (campaign, output) in outputs {
            grouped[campaign].push(output);
        }
        configs
            .iter()
            .zip(grouped)
            .enumerate()
            .map(|(campaign, (config, mine))| {
                // Each campaign's pipeline time is the compute its own
                // shards performed; the suite-wide wall clock would
                // report the same (contended) figure for every approach
                // and flatten Table 2's time-cost comparison.
                let shard_pipeline_time: std::time::Duration =
                    mine.iter().map(|o| o.pipeline_time).sum();
                let shards_computed = mine.len();
                let result = merge_shards(config, mine, shard_pipeline_time);
                OrchestratedResult {
                    stats: RunStats {
                        shards: shards_computed,
                        workers: self.options.workers.max(1),
                        shards_reused: 0,
                        shards_computed,
                        // NOTE: campaigns sharing a cache (equal test
                        // contexts) report that cache's suite-wide
                        // totals — per-campaign attribution isn't
                        // separable from shared counters.
                        cache: caches[campaign].as_ref().map(|c| c.stats()),
                        wall_time,
                        shard_pipeline_time,
                    },
                    result,
                }
            })
            .collect()
    }
}
