//! Multi-campaign scheduling with a shared worker budget.
//!
//! The paper's evaluation (Tables 2–5) runs four campaigns — one per
//! approach. Running them back to back wastes the pool whenever one
//! campaign's tail shards leave workers idle; the scheduler flattens every
//! campaign's shards into one task list so the pool stays saturated across
//! campaign boundaries.
//!
//! Campaigns whose test context matches — same seed, precision and
//! compiler/level matrix — share one result cache: program inputs are
//! derived from `(seed, program structure)` (see `llm4fp::campaign`), so a
//! cached matrix result is valid for any campaign in the same context, and
//! cross-approach duplicates (Varity and the LLM approaches drawing the
//! same idiom) are only tested once per suite.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use llm4fp::{BackendSpec, CampaignConfig, SuccessfulSet};
use llm4fp_compiler::{CompilerId, OptLevel};
use llm4fp_difftest::{ProcessBudget, ResultCache};
use llm4fp_fpir::Precision;
use llm4fp_telemetry::{keys, TelemetryHub};

use crate::orchestrate::{OrchestratedResult, OrchestratorOptions, RunStats};
use crate::pool::run_epochs;
use crate::shard::{
    merge_shards, plan_epoch_segments, plan_shards, ShardOutput, ShardRunner, ShardSpec,
};

/// The part of a campaign config that determines differential-testing
/// results for a given program: configs with equal contexts may share a
/// result cache. Backend identity is part of the context — cache keys
/// are backend-scoped anyway, so sharing across backends would be sound
/// but would conflate the per-campaign hit-rate statistics.
#[derive(Debug, Clone, PartialEq)]
struct TestContext {
    seed: u64,
    precision: Precision,
    compilers: Vec<CompilerId>,
    levels: Vec<OptLevel>,
    backend: BackendSpec,
}

impl TestContext {
    fn of(config: &CampaignConfig) -> Self {
        TestContext {
            seed: config.seed,
            precision: config.precision,
            compilers: config.compilers.clone(),
            levels: config.levels.clone(),
            backend: config.backend.clone(),
        }
    }
}

/// Runs a suite of campaigns concurrently over one worker pool.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    options: OrchestratorOptions,
}

impl Scheduler {
    pub fn new(options: OrchestratorOptions) -> Self {
        Scheduler { options }
    }

    /// Run every campaign, each split into `shards` shards (and, when
    /// `options.epochs > 1`, its own cross-shard feedback exchange),
    /// sharing the worker pool and, where sound, the result cache.
    /// Results come back in input order and are bit-identical to
    /// orchestrating each campaign individually with the same shard and
    /// epoch counts: exchange barriers are suite-wide (the pool stays
    /// saturated across campaign boundaries within an epoch), but deltas
    /// only ever merge into the pool of the campaign that produced them.
    ///
    /// Persistence (`options.run_dir`) applies to single-campaign runs via
    /// [`crate::Orchestrator`]; the scheduler itself executes in memory.
    pub fn run_suite(&self, configs: &[CampaignConfig], shards: usize) -> Vec<OrchestratedResult> {
        let start = Instant::now();
        let epochs = self.options.epochs.max(1);

        // One cache per distinct test context (None when caching is off).
        let contexts: Vec<TestContext> = configs.iter().map(TestContext::of).collect();
        let caches: Vec<Option<Arc<ResultCache>>> = if self.options.cache {
            let mut distinct: Vec<(TestContext, Arc<ResultCache>)> = Vec::new();
            contexts
                .iter()
                .map(|ctx| {
                    if let Some((_, cache)) = distinct.iter().find(|(c, _)| c == ctx) {
                        Some(Arc::clone(cache))
                    } else {
                        let cache = Arc::new(ResultCache::new());
                        distinct.push((ctx.clone(), Arc::clone(&cache)));
                        Some(cache)
                    }
                })
                .collect()
        } else {
            vec![None; configs.len()]
        };

        // Flatten every campaign's shards into one task list.
        let plans: Vec<Vec<ShardSpec>> =
            configs.iter().map(|config| plan_shards(config, shards)).collect();
        let tasks: Vec<(usize, ShardSpec)> = plans
            .iter()
            .enumerate()
            .flat_map(|(campaign, specs)| specs.iter().map(move |spec| (campaign, *spec)))
            .collect();

        // One suite-wide process budget bounds every external campaign's
        // spawns; virtual campaigns in the same suite stay unthrottled on
        // the thread pool (the mixed virtual/real regime).
        let budget = configs
            .iter()
            .any(|config| config.backend.is_external())
            .then(|| Arc::new(ProcessBudget::new(self.options.process_slots)));

        // One telemetry hub per campaign (lanes are shard indices within
        // the campaign), so each campaign's metrics merge exactly as its
        // individual orchestration would — no cross-campaign bleed.
        let hubs: Vec<TelemetryHub> =
            configs.iter().map(|_| TelemetryHub::new(self.options.telemetry)).collect();

        // One live runner per (campaign, shard) task and one exchange pool
        // per campaign; epoch barriers span the whole suite but deltas
        // stay within their campaign.
        let runners: Vec<Mutex<ShardRunner>> = tasks
            .iter()
            .map(|(campaign, spec)| {
                let mut runner =
                    ShardRunner::new(&configs[*campaign], *spec, caches[*campaign].clone())
                        .with_telemetry(hubs[*campaign].lane(spec.index));
                if configs[*campaign].backend.is_external() {
                    if let Some(budget) = &budget {
                        runner = runner.with_process_budget(Arc::clone(budget));
                    }
                }
                Mutex::new(runner)
            })
            .collect();
        let segments: Vec<Vec<usize>> =
            tasks.iter().map(|(_, spec)| plan_epoch_segments(spec.budget, epochs)).collect();
        let mut pools: Vec<SuccessfulSet> = configs.iter().map(|_| SuccessfulSet::new()).collect();

        // Per-campaign wall clocks: a campaign's elapsed time runs from
        // the instant the pool first picks up one of its shards to the
        // instant its last segment finishes — not the suite-wide elapsed,
        // which would charge every campaign for every other campaign's
        // work and flatten Table 2's time-cost comparison.
        let timings: Vec<Mutex<(Option<Instant>, Option<Instant>)>> =
            configs.iter().map(|_| Mutex::new((None, None))).collect();

        let pool_start = Instant::now();
        run_epochs(
            tasks.len(),
            self.options.workers,
            0..epochs,
            |task, epoch| {
                let (campaign, spec) = tasks[task];
                let telemetry = hubs[campaign].lane(spec.index);
                telemetry.observe(keys::QUEUE_WAIT, pool_start.elapsed());
                timings[campaign].lock().unwrap().0.get_or_insert_with(Instant::now);
                let delta = {
                    let _span = telemetry.span(keys::SPAN_SHARD_RUN);
                    runners[task].lock().unwrap().run_segment(segments[task][epoch], |_| {})
                };
                timings[campaign].lock().unwrap().1 = Some(Instant::now());
                delta
            },
            |_, deltas| {
                // Each campaign's hub times the suite-wide barrier on its
                // own orchestrator lane (one index past its shards).
                let _spans: Vec<_> = hubs
                    .iter()
                    .zip(&plans)
                    .map(|(hub, plan)| hub.lane(plan.len()).span(keys::SPAN_EXCHANGE))
                    .collect();
                // Task order is campaign-major then shard index, so each
                // campaign's deltas merge in exactly the order its
                // individual orchestration would use.
                for ((campaign, _), delta) in tasks.iter().zip(&deltas) {
                    pools[*campaign].merge_sources(delta);
                }
                for ((campaign, _), runner) in tasks.iter().zip(&runners) {
                    runner.lock().unwrap().inject(pools[*campaign].sources());
                }
            },
        );

        let outputs: Vec<(usize, ShardOutput)> = tasks
            .iter()
            .zip(runners)
            .map(|((campaign, _), runner)| (*campaign, runner.into_inner().unwrap().finish()))
            .collect();

        // Regroup by campaign (merge_shards re-sorts by shard index).
        let suite_elapsed = start.elapsed();
        let campaign_walls: Vec<std::time::Duration> = timings
            .into_iter()
            .map(|timing| match timing.into_inner().unwrap() {
                (Some(first_start), Some(last_end)) => last_end - first_start,
                _ => suite_elapsed,
            })
            .collect();
        let mut grouped: Vec<Vec<_>> = configs.iter().map(|_| Vec::new()).collect();
        for (campaign, output) in outputs {
            grouped[campaign].push(output);
        }
        configs
            .iter()
            .zip(grouped)
            .enumerate()
            .map(|(campaign, (config, mine))| {
                // Each campaign's pipeline time is the compute its own
                // shards performed; the suite-wide wall clock would
                // report the same (contended) figure for every approach
                // and flatten Table 2's time-cost comparison.
                let shard_pipeline_time: std::time::Duration =
                    mine.iter().map(|o| o.pipeline_time).sum();
                let shards_computed = mine.len();
                let peak_regs = mine.iter().filter_map(|o| o.peak_regs).max();
                let result = merge_shards(config, mine, shard_pipeline_time);
                OrchestratedResult {
                    stats: RunStats {
                        shards: shards_computed,
                        workers: self.options.workers.max(1),
                        epochs,
                        shards_reused: 0,
                        shards_computed,
                        epochs_restored: 0,
                        // NOTE: campaigns sharing a cache (equal test
                        // contexts) report that cache's suite-wide
                        // totals — per-campaign attribution isn't
                        // separable from shared counters.
                        cache: caches[campaign].as_ref().map(|c| c.stats()),
                        peak_regs,
                        wall_time: campaign_walls[campaign],
                        shard_pipeline_time,
                        telemetry: hubs[campaign].enabled().then(|| hubs[campaign].summary()),
                    },
                    result,
                }
            })
            .collect()
    }
}
