//! Multi-campaign scheduling with a shared worker budget.
//!
//! The paper's evaluation (Tables 2–5) runs four campaigns — one per
//! approach. Running them back to back wastes the pool whenever one
//! campaign's tail shards leave workers idle; the scheduler flattens every
//! campaign's shards into one task list so the pool stays saturated across
//! campaign boundaries. The flattened list runs on any [`ShardExecutor`]
//! — the same transports (and the same barrier protocol) as
//! single-campaign orchestration.
//!
//! Campaigns whose test context matches — same seed, precision and
//! compiler/level matrix — share one result cache: program inputs are
//! derived from `(seed, program structure)` (see `llm4fp::campaign`), so a
//! cached matrix result is valid for any campaign in the same context, and
//! cross-approach duplicates (Varity and the LLM approaches drawing the
//! same idiom) are only tested once per suite.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use llm4fp::{BackendSpec, CampaignConfig, ProgramRecord, SuccessfulSet};
use llm4fp_compiler::{CompilerId, OptLevel};
use llm4fp_difftest::{ProcessBudget, ResultCache};
use llm4fp_fpir::Precision;
use llm4fp_telemetry::{keys, TelemetryHub};

use crate::executor::{InProcessExecutor, OrchestratorError, RecordSink, ShardExecutor, ShardTask};
use crate::orchestrate::{OrchestratedResult, OrchestratorOptions, RunStats};
use crate::shard::{merge_shards, plan_epoch_segments, plan_shards, ShardOutput, ShardSpec};

/// The part of a campaign config that determines differential-testing
/// results for a given program: configs with equal contexts may share a
/// result cache. Backend identity is part of the context — cache keys
/// are backend-scoped anyway, so sharing across backends would be sound
/// but would conflate the per-campaign hit-rate statistics.
#[derive(Debug, Clone, PartialEq)]
struct TestContext {
    seed: u64,
    precision: Precision,
    compilers: Vec<CompilerId>,
    levels: Vec<OptLevel>,
    backend: BackendSpec,
}

impl TestContext {
    fn of(config: &CampaignConfig) -> Self {
        TestContext {
            seed: config.seed,
            precision: config.precision,
            compilers: config.compilers.clone(),
            levels: config.levels.clone(),
            backend: config.backend.clone(),
        }
    }
}

/// Runs a suite of campaigns concurrently over one worker pool. Builder
/// style, mirroring [`crate::Orchestrator`]:
///
/// ```ignore
/// let results = Scheduler::new(options).shards(4).run(&configs)?;
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    options: OrchestratorOptions,
    shards: usize,
    executor: Option<Arc<dyn ShardExecutor>>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new(OrchestratorOptions::default())
    }
}

impl Scheduler {
    pub fn new(options: OrchestratorOptions) -> Self {
        Scheduler { options, shards: 1, executor: None }
    }

    /// Split every campaign into `shards` shards (default 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Run the suite's flattened shard list through this transport
    /// instead of the default [`InProcessExecutor`]. Results are
    /// bit-identical for any executor.
    pub fn executor(mut self, executor: Arc<dyn ShardExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Run every campaign (each split into the configured shard count
    /// and, when `options.epochs > 1`, its own cross-shard feedback
    /// exchange), sharing the worker pool and, where sound, the result
    /// cache. Results come back in input order and are bit-identical to
    /// orchestrating each campaign individually with the same shard and
    /// epoch counts: exchange barriers are suite-wide (the pool stays
    /// saturated across campaign boundaries within an epoch), but deltas
    /// only ever merge into the pool of the campaign that produced them.
    ///
    /// Persistence (`options.run_dir`) applies to single-campaign runs via
    /// [`crate::Orchestrator`]; the scheduler itself executes in memory.
    pub fn run(
        &self,
        configs: &[CampaignConfig],
    ) -> Result<Vec<OrchestratedResult>, OrchestratorError> {
        if self.options.workers == 0 {
            return Err(OrchestratorError::InvalidWorkers);
        }
        let start = Instant::now();
        let epochs = self.options.epochs.max(1);
        let executor: Arc<dyn ShardExecutor> = self
            .executor
            .clone()
            .unwrap_or_else(|| Arc::new(InProcessExecutor::new(self.options.workers)));

        // One cache per distinct test context (None when caching is off,
        // or when the transport never consults coordinator-side caches).
        let contexts: Vec<TestContext> = configs.iter().map(TestContext::of).collect();
        let caches: Vec<Option<Arc<ResultCache>>> = if self.options.cache && executor.shares_cache()
        {
            let mut distinct: Vec<(TestContext, Arc<ResultCache>)> = Vec::new();
            contexts
                .iter()
                .map(|ctx| {
                    if let Some((_, cache)) = distinct.iter().find(|(c, _)| c == ctx) {
                        Some(Arc::clone(cache))
                    } else {
                        let cache = Arc::new(ResultCache::new());
                        distinct.push((ctx.clone(), Arc::clone(&cache)));
                        Some(cache)
                    }
                })
                .collect()
        } else {
            vec![None; configs.len()]
        };

        // Flatten every campaign's shards into one task list.
        let plans: Vec<Vec<ShardSpec>> =
            configs.iter().map(|config| plan_shards(config, self.shards)).collect();
        let tasks: Vec<(usize, ShardSpec)> = plans
            .iter()
            .enumerate()
            .flat_map(|(campaign, specs)| specs.iter().map(move |spec| (campaign, *spec)))
            .collect();

        // One suite-wide process budget bounds every external campaign's
        // spawns; virtual campaigns in the same suite stay unthrottled on
        // the thread pool (the mixed virtual/real regime).
        let budget = configs
            .iter()
            .any(|config| config.backend.is_external())
            .then(|| Arc::new(ProcessBudget::new(self.options.process_slots)));

        // One telemetry hub per campaign (lanes are shard indices within
        // the campaign), so each campaign's metrics merge exactly as its
        // individual orchestration would — no cross-campaign bleed.
        let hubs: Vec<TelemetryHub> =
            configs.iter().map(|_| TelemetryHub::new(self.options.telemetry)).collect();

        let shard_tasks: Vec<ShardTask> = tasks
            .iter()
            .map(|(campaign, spec)| ShardTask {
                config: configs[*campaign].clone(),
                spec: *spec,
                cache: caches[*campaign].clone(),
                budget: if configs[*campaign].backend.is_external() {
                    budget.clone()
                } else {
                    None
                },
                process_slots: self.options.process_slots,
                telemetry: hubs[*campaign].lane(spec.index),
                checkpoint: None,
            })
            .collect();
        let segments: Vec<Vec<usize>> =
            tasks.iter().map(|(_, spec)| plan_epoch_segments(spec.budget, epochs)).collect();
        let mut pools: Vec<SuccessfulSet> = configs.iter().map(|_| SuccessfulSet::new()).collect();

        let sink = TimingSink::new(tasks.iter().map(|(campaign, _)| *campaign).collect());
        let mut session = executor.begin(shard_tasks, &sink)?;

        for epoch in 0..epochs {
            let last = epoch + 1 == epochs;
            let plan: Vec<usize> = segments.iter().map(|segments| segments[epoch]).collect();
            let deltas = session.run_epoch(&plan, last)?;
            if last {
                break;
            }
            // Each campaign's hub times the suite-wide barrier on its
            // own orchestrator lane (one index past its shards).
            let _spans: Vec<_> = hubs
                .iter()
                .zip(&plans)
                .map(|(hub, plan)| hub.lane(plan.len()).span(keys::SPAN_EXCHANGE))
                .collect();
            // Task order is campaign-major then shard index, so each
            // campaign's deltas merge in exactly the order its
            // individual orchestration would use.
            for ((campaign, _), delta) in tasks.iter().zip(&deltas) {
                pools[*campaign].merge_sources(delta);
            }
            let broadcast: Vec<&[String]> =
                tasks.iter().map(|(campaign, _)| pools[*campaign].sources()).collect();
            session.inject(&broadcast)?;
        }

        let session_outcome = session.finish()?;

        // Regroup by campaign (merge_shards re-sorts by shard index).
        // Quarantined shards land in their campaign's failure reports
        // instead of its merge set — one poisonous shard degrades only
        // its own campaign's coverage, never the whole suite.
        let suite_elapsed = start.elapsed();
        let campaign_walls = sink.campaign_walls(suite_elapsed);
        let mut grouped: Vec<Vec<ShardOutput>> = configs.iter().map(|_| Vec::new()).collect();
        let mut campaign_failures: Vec<Vec<_>> = configs.iter().map(|_| Vec::new()).collect();
        for ((campaign, _), shard) in tasks.iter().zip(session_outcome.shards) {
            match shard {
                Ok(output) => grouped[*campaign].push(output),
                Err(report) => campaign_failures[*campaign].push(report),
            }
        }
        Ok(configs
            .iter()
            .zip(grouped)
            .enumerate()
            .map(|(campaign, (config, mine))| {
                // Each campaign's pipeline time is the compute its own
                // shards performed; the suite-wide wall clock would
                // report the same (contended) figure for every approach
                // and flatten Table 2's time-cost comparison.
                let shard_pipeline_time: std::time::Duration =
                    mine.iter().map(|o| o.pipeline_time).sum();
                let shards_computed = mine.len();
                let peak_regs = mine.iter().filter_map(|o| o.peak_regs).max();
                let result = merge_shards(config, mine, shard_pipeline_time);
                OrchestratedResult {
                    stats: RunStats {
                        shards: shards_computed,
                        workers: self.options.workers,
                        epochs,
                        shards_reused: 0,
                        shards_computed,
                        epochs_restored: 0,
                        // NOTE: campaigns sharing a cache (equal test
                        // contexts) report that cache's suite-wide
                        // totals — per-campaign attribution isn't
                        // separable from shared counters.
                        cache: caches[campaign].as_ref().map(|c| c.stats()),
                        peak_regs,
                        wall_time: campaign_walls[campaign],
                        shard_pipeline_time,
                        telemetry: hubs[campaign].enabled().then(|| hubs[campaign].summary()),
                        failures: std::mem::take(&mut campaign_failures[campaign]),
                        persist_errors: 0,
                        fell_back_to_in_process: false,
                    },
                    result,
                }
            })
            .collect())
    }

    /// Deprecated positional entry point.
    #[deprecated(since = "0.3.0", note = "use `Scheduler::new(options).shards(k).run(configs)`")]
    pub fn run_suite(&self, configs: &[CampaignConfig], shards: usize) -> Vec<OrchestratedResult> {
        let mut scheduler = self.clone().shards(shards);
        // The old signature silently tolerated `workers == 0`; preserve
        // that for existing callers (the builder rejects it instead).
        scheduler.options.workers = scheduler.options.workers.max(1);
        scheduler.run(configs).expect("in-memory suite cannot fail")
    }
}

/// The scheduler's [`RecordSink`]: per-campaign wall clocks. A campaign's
/// elapsed time runs from the instant the pool first processes one of its
/// programs to the instant its last shard makes progress or completes —
/// not the suite-wide elapsed, which would charge every campaign for
/// every other campaign's work and flatten Table 2's time-cost
/// comparison.
struct TimingSink {
    /// Task index -> campaign index.
    campaigns: Vec<usize>,
    timings: Vec<Mutex<(Option<Instant>, Option<Instant>)>>,
}

impl TimingSink {
    fn new(campaigns: Vec<usize>) -> Self {
        let campaign_count = campaigns.iter().copied().max().map_or(0, |max| max + 1);
        TimingSink {
            campaigns,
            timings: (0..campaign_count).map(|_| Mutex::new((None, None))).collect(),
        }
    }

    fn touch(&self, task: usize) {
        let mut timing = self.timings[self.campaigns[task]].lock().unwrap();
        timing.0.get_or_insert_with(Instant::now);
        timing.1 = Some(Instant::now());
    }

    fn campaign_walls(&self, fallback: std::time::Duration) -> Vec<std::time::Duration> {
        self.timings
            .iter()
            .map(|timing| match *timing.lock().unwrap() {
                (Some(first_start), Some(last_end)) => last_end - first_start,
                _ => fallback,
            })
            .collect()
    }
}

impl RecordSink for TimingSink {
    fn record(&self, task: usize, _record: &ProgramRecord) {
        self.touch(task);
    }

    fn complete(&self, task: usize, _output: &ShardOutput) {
        self.touch(task);
    }
}
