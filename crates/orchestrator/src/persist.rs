//! Persistent run directories with resume-from-partial-run.
//!
//! Layout of a run directory:
//!
//! ```text
//! <run_dir>/
//!   manifest.json          campaign config + shard count + epoch count
//!   shards/
//!     shard-0000.jsonl     one file per shard (see below)
//!     ...
//!   epochs/
//!     epoch-0000.json      cumulative exchange pool after barrier 0
//!     ...
//!   checkpoints/
//!     shard-0000-epoch-0000.json   runner checkpoint at barrier 0
//!     ...
//!   result.json            merged CampaignResult, written on completion
//!   summary.json           RunStats (incl. cache hit rate), on completion
//! ```
//!
//! The `epochs/` and `checkpoints/` files exist only for multi-epoch runs
//! (cross-shard feedback exchange): each barrier atomically records the
//! merged successful-source pool and, per shard, the paused runner's
//! checkpoint *after* pool injection. Resuming a killed multi-epoch run
//! restores every shard at the latest barrier for which the pool and all
//! shard checkpoints are present, recomputing only the later epochs.
//!
//! Each shard file is JSONL, streamed while the shard runs so an
//! interrupted run keeps its progress visible:
//!
//! ```text
//! {"spec": {...}}          header: the ShardSpec being executed
//! {"record": {...}}        one line per processed program
//! {"summary": {...}}       final line: the full ShardOutput
//! ```
//!
//! A shard counts as complete exactly when its `summary` line parses and
//! matches the planned spec; anything else (missing file, truncated tail,
//! mismatched plan) makes the shard recompute on resume. The summary line
//! carries everything the merge needs, so resumed and fresh runs produce
//! bit-identical campaign results.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use serde_json::Value;

use llm4fp::{CampaignConfig, CampaignResult, ProgramRecord, RunnerCheckpoint};
use llm4fp_telemetry::{MetricsReport, TraceEvent};

use crate::orchestrate::RunStats;
use crate::shard::{ShardOutput, ShardSpec};

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    /// A manifest exists but doesn't match the requested run.
    ManifestMismatch(String),
    Corrupt(String),
    /// A value failed to serialize (e.g. a non-finite float somewhere in
    /// the stats). Surfaced instead of panicking so a persistence problem
    /// never kills an otherwise complete in-memory run.
    Encode(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "run-dir io error: {e}"),
            PersistError::ManifestMismatch(msg) => write!(f, "manifest mismatch: {msg}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt run dir: {msg}"),
            PersistError::Encode(msg) => write!(f, "serialization failed: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serialize `value` compactly, naming `what` in the error.
fn encode<T: Serialize + ?Sized>(what: &str, value: &T) -> Result<String, PersistError> {
    serde_json::to_string(value).map_err(|e| PersistError::Encode(format!("{what}: {e}")))
}

/// Serialize `value` pretty-printed, naming `what` in the error.
fn encode_pretty<T: Serialize + ?Sized>(what: &str, value: &T) -> Result<String, PersistError> {
    serde_json::to_string_pretty(value).map_err(|e| PersistError::Encode(format!("{what}: {e}")))
}

/// The run's identity: what was asked for, and how it was decomposed.
/// `epochs` is part of the identity — exchanged and non-exchanged runs of
/// the same `(config, shards)` produce different results, so their shard
/// outputs must never mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    pub config: CampaignConfig,
    pub shards: usize,
    pub epochs: usize,
}

/// Handle to one run directory.
#[derive(Debug, Clone)]
pub struct RunDir {
    root: PathBuf,
}

impl RunDir {
    /// Open (creating directories as needed) a run directory for the given
    /// manifest. If a manifest is already present it must match — resuming
    /// a run with a different config or shard count would silently mix
    /// incompatible shard outputs.
    pub fn open(root: impl Into<PathBuf>, manifest: &RunManifest) -> Result<Self, PersistError> {
        let root = root.into();
        fs::create_dir_all(root.join("shards"))?;
        let manifest_path = root.join("manifest.json");
        if manifest_path.exists() {
            let text = fs::read_to_string(&manifest_path)?;
            let existing: RunManifest = serde_json::from_str(&text)
                .map_err(|e| PersistError::Corrupt(format!("manifest.json: {e}")))?;
            if &existing != manifest {
                return Err(PersistError::ManifestMismatch(format!(
                    "run dir {} was created for a different (config, shards); \
                     refusing to mix shard outputs",
                    root.display()
                )));
            }
        } else {
            write_atomically(&manifest_path, &encode_pretty("manifest.json", manifest)?)?;
        }
        Ok(RunDir { root })
    }

    /// Read the manifest of an existing run directory.
    pub fn read_manifest(root: impl AsRef<Path>) -> Result<RunManifest, PersistError> {
        let path = root.as_ref().join("manifest.json");
        let text = fs::read_to_string(&path)?;
        serde_json::from_str(&text)
            .map_err(|e| PersistError::Corrupt(format!("manifest.json: {e}")))
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn shard_path(&self, index: usize) -> PathBuf {
        self.root.join("shards").join(format!("shard-{index:04}.jsonl"))
    }

    /// Load a shard's output if its file is complete and matches `spec`.
    /// Incomplete or stale files yield `None` (the shard reruns).
    pub fn load_shard(&self, spec: &ShardSpec) -> Option<ShardOutput> {
        let file = File::open(self.shard_path(spec.index)).ok()?;
        let mut summary: Option<ShardOutput> = None;
        for line in BufReader::new(file).lines() {
            let line = line.ok()?;
            if line.trim().is_empty() {
                continue;
            }
            let value: Value = serde_json::parse(&line).ok()?;
            if let Some(obj) = value.as_obj() {
                if let Some(inner) = obj.get("summary") {
                    summary = serde_json::from_value(inner).ok();
                }
            }
        }
        let output = summary?;
        (output.spec == *spec).then_some(output)
    }

    /// Start streaming one shard's progress to disk.
    pub fn shard_writer(&self, spec: &ShardSpec) -> Result<ShardWriter, PersistError> {
        let path = self.shard_path(spec.index);
        let mut writer = BufWriter::new(File::create(&path)?);
        let mut header = serde_json::Map::new();
        header.insert("spec".to_string(), serde_json::to_value(spec));
        writeln!(writer, "{}", encode("shard header", &Value::Obj(header))?)?;
        writer.flush()?;
        Ok(ShardWriter { writer })
    }

    fn epoch_pool_path(&self, epoch: usize) -> PathBuf {
        self.root.join("epochs").join(format!("epoch-{epoch:04}.json"))
    }

    fn checkpoint_path(&self, shard: usize, epoch: usize) -> PathBuf {
        self.root.join("checkpoints").join(format!("shard-{shard:04}-epoch-{epoch:04}.json"))
    }

    /// Atomically record the cumulative exchange pool after a barrier.
    pub fn write_epoch_pool(&self, epoch: usize, pool: &[String]) -> Result<(), PersistError> {
        fs::create_dir_all(self.root.join("epochs"))?;
        write_atomically(&self.epoch_pool_path(epoch), &encode("epoch pool", pool)?)
    }

    /// Load the cumulative exchange pool recorded at a barrier, if any.
    pub fn load_epoch_pool(&self, epoch: usize) -> Option<Vec<String>> {
        let text = fs::read_to_string(self.epoch_pool_path(epoch)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Atomically record one shard's paused-runner checkpoint at a barrier
    /// (taken after pool injection).
    pub fn write_checkpoint(
        &self,
        shard: usize,
        epoch: usize,
        checkpoint: &RunnerCheckpoint,
    ) -> Result<(), PersistError> {
        fs::create_dir_all(self.root.join("checkpoints"))?;
        write_atomically(&self.checkpoint_path(shard, epoch), &encode("checkpoint", checkpoint)?)
    }

    /// Load one shard's checkpoint at a barrier, if present and parseable.
    pub fn load_checkpoint(&self, shard: usize, epoch: usize) -> Option<RunnerCheckpoint> {
        let text = fs::read_to_string(self.checkpoint_path(shard, epoch)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// The latest barrier a killed multi-epoch run can restore from: the
    /// highest epoch `< epochs - 1` whose pool file and *all* shard
    /// checkpoints load. `None` means restart from scratch.
    pub fn latest_restorable_epoch(&self, shards: usize, epochs: usize) -> Option<usize> {
        (0..epochs.saturating_sub(1)).rev().find(|&epoch| {
            self.load_epoch_pool(epoch).is_some()
                && (0..shards).all(|shard| self.load_checkpoint(shard, epoch).is_some())
        })
    }

    /// Persist the merged campaign result.
    pub fn write_result(&self, result: &CampaignResult) -> Result<(), PersistError> {
        write_atomically(&self.root.join("result.json"), &encode_pretty("result.json", result)?)
    }

    /// Load a previously persisted merged result, if any.
    pub fn load_result(&self) -> Option<CampaignResult> {
        let text = fs::read_to_string(self.root.join("result.json")).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Persist the run's execution statistics (worker/shard/epoch counts
    /// and the result-cache hit rate) alongside the merged result.
    /// Serialization failures propagate as [`PersistError::Encode`] —
    /// completeness checks depend on `summary.json`, so a silently
    /// missing or partial summary must never look like success.
    pub fn write_summary(&self, stats: &RunStats) -> Result<(), PersistError> {
        write_atomically(&self.root.join("summary.json"), &encode_pretty("summary.json", stats)?)
    }

    /// Load a previously persisted run summary, if any.
    pub fn load_summary(&self) -> Option<RunStats> {
        let text = fs::read_to_string(self.root.join("summary.json")).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Persist the deterministic metrics flight recorder. For fully
    /// computed runs the bytes are a pure function of `(config, K, E)` —
    /// diffable between runs like any other campaign artifact.
    pub fn write_metrics(&self, report: &MetricsReport) -> Result<(), PersistError> {
        write_atomically(&self.root.join("metrics.json"), &encode_pretty("metrics.json", report)?)
    }

    /// Load a previously persisted metrics report, if any.
    pub fn load_metrics(&self) -> Option<MetricsReport> {
        let text = fs::read_to_string(self.root.join("metrics.json")).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Persist the Chrome `trace_event` flight recorder as JSON lines
    /// (`chrome://tracing` and Perfetto both ingest the format). Wall
    /// clock data — unlike `metrics.json` it never reproduces exactly.
    pub fn write_trace(&self, events: &[TraceEvent]) -> Result<(), PersistError> {
        let mut out = String::new();
        for event in events {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        write_atomically(&self.root.join("trace.jsonl"), &out)
    }

    /// Load the persisted trace's JSON lines, if any.
    pub fn load_trace_lines(&self) -> Option<Vec<String>> {
        let text = fs::read_to_string(self.root.join("trace.jsonl")).ok()?;
        Some(text.lines().map(str::to_string).collect())
    }
}

/// Streams one shard's records and final summary to its JSONL file.
pub struct ShardWriter {
    writer: BufWriter<File>,
}

impl ShardWriter {
    /// Append one processed-program progress line. Progress lines are
    /// best-effort: write *and* serialization problems are swallowed (a
    /// shard with dropped lines just recomputes on resume; only the
    /// summary line decides completeness).
    pub fn record(&mut self, record: &ProgramRecord) {
        let mut line = serde_json::Map::new();
        line.insert("record".to_string(), serde_json::to_value(record));
        if let Ok(text) = serde_json::to_string(&Value::Obj(line)) {
            let _ = writeln!(self.writer, "{text}");
            let _ = self.writer.flush();
        }
    }

    /// Append the completing summary line. The shard only counts as done
    /// once this succeeds.
    pub fn finish(mut self, output: &ShardOutput) -> Result<(), PersistError> {
        let mut line = serde_json::Map::new();
        line.insert("summary".to_string(), serde_json::to_value(output));
        writeln!(self.writer, "{}", encode("shard summary", &Value::Obj(line))?)?;
        self.writer.flush()?;
        Ok(())
    }
}

fn write_atomically(path: &Path, contents: &str) -> Result<(), PersistError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm4fp::ApproachKind;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("llm4fp-orchestrator-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> RunManifest {
        RunManifest {
            config: CampaignConfig::new(ApproachKind::Varity).with_budget(6).with_seed(2),
            shards: 2,
            epochs: 1,
        }
    }

    #[test]
    fn manifests_round_trip_and_mismatches_are_rejected() {
        let root = temp_dir("manifest");
        let m = manifest();
        let _dir = RunDir::open(&root, &m).unwrap();
        assert_eq!(RunDir::read_manifest(&root).unwrap(), m);
        // Reopening with the same manifest is fine.
        RunDir::open(&root, &m).unwrap();
        // A different plan is refused.
        let other = RunManifest { shards: 3, ..m };
        assert!(matches!(RunDir::open(&root, &other), Err(PersistError::ManifestMismatch(_))));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn incomplete_shard_files_do_not_load() {
        let root = temp_dir("incomplete");
        let dir = RunDir::open(&root, &manifest()).unwrap();
        let spec = ShardSpec { index: 0, budget: 3, offset: 0, seed: 2 };
        // Header + records but no summary: must not load.
        let mut writer = dir.shard_writer(&spec).unwrap();
        writer.record(&ProgramRecord {
            index: 0,
            program_id: "p".into(),
            strategy: "varity".into(),
            valid: true,
            inconsistencies: 0,
            successful: false,
        });
        drop(writer);
        assert!(dir.load_shard(&spec).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn epoch_pools_and_checkpoints_round_trip() {
        let root = temp_dir("epochs");
        let dir = RunDir::open(&root, &manifest()).unwrap();
        let config = manifest().config;
        let spec = crate::shard::plan_shards(&config, 2)[0];

        let pool = vec!["void compute(double x) { comp = x; }".to_string()];
        dir.write_epoch_pool(0, &pool).unwrap();
        assert_eq!(dir.load_epoch_pool(0).unwrap(), pool);
        assert!(dir.load_epoch_pool(1).is_none());

        let mut runner = crate::shard::ShardRunner::new(&config, spec, None);
        runner.run_segment(2, |_| {});
        runner.inject(&pool);
        let checkpoint = runner.checkpoint();
        dir.write_checkpoint(0, 0, &checkpoint).unwrap();
        assert_eq!(dir.load_checkpoint(0, 0).unwrap(), checkpoint);

        // Epoch 0 is restorable only once every shard has a checkpoint.
        assert_eq!(dir.latest_restorable_epoch(2, 4), None);
        dir.write_checkpoint(1, 0, &checkpoint).unwrap();
        assert_eq!(dir.latest_restorable_epoch(2, 4), Some(0));
        // A corrupt pool file disqualifies its barrier.
        fs::write(root.join("epochs").join("epoch-0000.json"), "{truncated").unwrap();
        assert_eq!(dir.latest_restorable_epoch(2, 4), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn complete_shards_round_trip_and_stale_specs_are_ignored() {
        let root = temp_dir("roundtrip");
        let dir = RunDir::open(&root, &manifest()).unwrap();
        let config = manifest().config;
        let spec = crate::shard::plan_shards(&config, 2)[0];
        let mut writer = dir.shard_writer(&spec).unwrap();
        let mut runner = crate::shard::ShardRunner::new(&config, spec, None);
        runner.run_segment(spec.budget, |r| writer.record(r));
        let output = runner.finish();
        writer.finish(&output).unwrap();
        assert_eq!(dir.load_shard(&spec).unwrap(), output);
        // A spec from a different plan must not accept this file.
        let stale = ShardSpec { budget: spec.budget + 1, ..spec };
        assert!(dir.load_shard(&stale).is_none());
        let _ = fs::remove_dir_all(&root);
    }
}
