//! Persistent run directories with resume-from-partial-run.
//!
//! Layout of a run directory:
//!
//! ```text
//! <run_dir>/
//!   manifest.json          campaign config + shard count + epoch count
//!   shards/
//!     shard-0000.jsonl     one file per shard (see below)
//!     ...
//!   epochs/
//!     epoch-0000.json      cumulative exchange pool after barrier 0
//!     ...
//!   checkpoints/
//!     shard-0000-epoch-0000.json   runner checkpoint at barrier 0
//!     ...
//!   result.json            merged CampaignResult, written on completion
//!   summary.json           RunStats (incl. cache hit rate), on completion
//! ```
//!
//! The `epochs/` and `checkpoints/` files exist only for multi-epoch runs
//! (cross-shard feedback exchange): each barrier atomically records the
//! merged successful-source pool and, per shard, the paused runner's
//! checkpoint *after* pool injection. Resuming a killed multi-epoch run
//! restores every shard at the latest barrier for which the pool and all
//! shard checkpoints are present, recomputing only the later epochs.
//!
//! Each shard file is JSONL, streamed while the shard runs so an
//! interrupted run keeps its progress visible:
//!
//! ```text
//! {"spec": {...}}          header: the ShardSpec being executed
//! {"record": {...}}        one line per processed program
//! {"summary": {...}}       final line: the full ShardOutput
//! ```
//!
//! A shard counts as complete exactly when its `summary` line parses and
//! matches the planned spec; anything else (missing file, truncated tail,
//! mismatched plan) makes the shard recompute on resume. The summary line
//! carries everything the merge needs, so resumed and fresh runs produce
//! bit-identical campaign results.
//!
//! ## Crash safety
//!
//! Every non-streamed artifact is written via a unique temp file in the
//! same directory plus an atomic rename, so a crash mid-write can never
//! leave a half-written `manifest.json`, barrier file, or result — only
//! a stale `.tmp` straggler, which [`RunDir::open`] sweeps away. The
//! streamed shard JSONL files tolerate damage instead: a torn tail (the
//! process died mid-`writeln!`) is *partial progress*, not corruption —
//! unparseable lines are skipped and the shard simply recomputes unless
//! its summary line survived. The manifest carries a schema version
//! ([`MANIFEST_SCHEMA`]); a run dir written by a newer schema is refused
//! with the typed [`PersistError::SchemaMismatch`] rather than being
//! misread, while pre-versioning dirs (no `schema` field) still open.
//!
//! Failures are never silent: artifact problems surface as the typed
//! [`PersistError`] taxonomy, and best-effort paths (shard progress
//! lines, barrier writes) count into [`RunDir::persist_errors`] and the
//! [`llm4fp_telemetry::keys::PERSIST_ERRORS`] keyed counter so
//! `summary.json` reports exactly how much was dropped.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serde_json::Value;

use llm4fp::{CampaignConfig, CampaignResult, ProgramRecord, RunnerCheckpoint};
use llm4fp_telemetry::{keyed_id, keys, MetricsReport, Telemetry, TraceEvent};

use crate::faults::PersistFault;
use crate::orchestrate::RunStats;
use crate::shard::{ShardOutput, ShardSpec};

/// The manifest schema this build reads and writes. Version 1 is the
/// pre-versioning layout (no `schema` field); version 2 added the field
/// itself. Opening a run dir written by a *newer* schema fails with
/// [`PersistError::SchemaMismatch`] instead of silently misreading it.
pub const MANIFEST_SCHEMA: u32 = 2;

/// Which run-dir artifact a persistence error is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    Manifest,
    ShardFile,
    EpochPool,
    Checkpoint,
    Result,
    Summary,
    Metrics,
    Trace,
}

impl std::fmt::Display for Artifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Artifact::Manifest => "manifest.json",
            Artifact::ShardFile => "shard file",
            Artifact::EpochPool => "epoch pool",
            Artifact::Checkpoint => "checkpoint",
            Artifact::Result => "result.json",
            Artifact::Summary => "summary.json",
            Artifact::Metrics => "metrics.json",
            Artifact::Trace => "trace.jsonl",
        })
    }
}

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    /// A manifest exists but doesn't match the requested run.
    ManifestMismatch(String),
    /// An artifact exists but cannot be read as what it claims to be.
    Corrupt {
        artifact: Artifact,
        detail: String,
    },
    /// The run dir was written by a newer manifest schema than this build
    /// understands.
    SchemaMismatch {
        found: u32,
        supported: u32,
    },
    /// A value failed to serialize (e.g. a non-finite float somewhere in
    /// the stats). Surfaced instead of panicking so a persistence problem
    /// never kills an otherwise complete in-memory run.
    Encode(String),
}

impl PersistError {
    /// A typed corruption error naming the damaged artifact.
    pub fn corrupt(artifact: Artifact, detail: impl Into<String>) -> Self {
        PersistError::Corrupt { artifact, detail: detail.into() }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "run-dir io error: {e}"),
            PersistError::ManifestMismatch(msg) => write!(f, "manifest mismatch: {msg}"),
            PersistError::Corrupt { artifact, detail } => {
                write!(f, "corrupt run dir ({artifact}): {detail}")
            }
            PersistError::SchemaMismatch { found, supported } => write!(
                f,
                "manifest schema {found} is newer than this build supports (max {supported}); \
                 refusing to misread the run dir"
            ),
            PersistError::Encode(msg) => write!(f, "serialization failed: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serialize `value` compactly, naming `what` in the error.
fn encode<T: Serialize + ?Sized>(what: &str, value: &T) -> Result<String, PersistError> {
    serde_json::to_string(value).map_err(|e| PersistError::Encode(format!("{what}: {e}")))
}

/// Serialize `value` pretty-printed, naming `what` in the error.
fn encode_pretty<T: Serialize + ?Sized>(what: &str, value: &T) -> Result<String, PersistError> {
    serde_json::to_string_pretty(value).map_err(|e| PersistError::Encode(format!("{what}: {e}")))
}

/// The run's identity: what was asked for, and how it was decomposed.
/// `epochs` is part of the identity — exchanged and non-exchanged runs of
/// the same `(config, shards)` produce different results, so their shard
/// outputs must never mix. `schema` versions the layout itself (`None`
/// means a pre-versioning dir, schema 1) and is *not* part of the
/// identity comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    pub config: CampaignConfig,
    pub shards: usize,
    pub epochs: usize,
    pub schema: Option<u32>,
}

impl RunManifest {
    /// A manifest for this build's schema version.
    pub fn new(config: CampaignConfig, shards: usize, epochs: usize) -> Self {
        RunManifest { config, shards, epochs, schema: Some(MANIFEST_SCHEMA) }
    }

    /// The effective schema version (`None` = pre-versioning = 1).
    pub fn schema_version(&self) -> u32 {
        self.schema.unwrap_or(1)
    }

    /// Whether two manifests describe the same run (config, decomposition
    /// and epoch plan — the schema version is a layout property, not an
    /// identity property, so resuming a schema-1 dir with this build is
    /// fine).
    fn same_run(&self, other: &RunManifest) -> bool {
        self.config == other.config && self.shards == other.shards && self.epochs == other.epochs
    }
}

/// Shared mutable state of a [`RunDir`]: the persist-error counter and
/// the armed torn-write faults (empty outside chaos tests — one branch
/// per write).
#[derive(Debug, Default)]
struct PersistState {
    errors: AtomicU64,
    /// `(file-name substring, already fired)` — each fault fires once.
    torn_writes: Vec<(String, AtomicBool)>,
}

impl PersistState {
    /// Whether an armed torn-write fault claims this artifact write.
    /// Matched against `dir/name` so a plan can target one artifact
    /// (`"epoch-0001"`) or a whole class (`"checkpoints/"`).
    fn sabotage(&self, path: &Path) -> bool {
        if self.torn_writes.is_empty() {
            return false;
        }
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let ident = match path.parent().and_then(|p| p.file_name()) {
            Some(dir) => format!("{}/{name}", dir.to_string_lossy()),
            None => name,
        };
        self.torn_writes.iter().any(|(needle, fired)| {
            ident.contains(needle.as_str())
                && fired.compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst).is_ok()
        })
    }
}

/// Handle to one run directory.
#[derive(Debug, Clone)]
pub struct RunDir {
    root: PathBuf,
    state: Arc<PersistState>,
}

impl RunDir {
    /// Open (creating directories as needed) a run directory for the given
    /// manifest, sweeping any stale `.tmp` stragglers a crashed writer
    /// left behind. If a manifest is already present it must describe the
    /// same run — resuming with a different config or shard count would
    /// silently mix incompatible shard outputs — and must not come from a
    /// newer [`MANIFEST_SCHEMA`] than this build understands.
    pub fn open(root: impl Into<PathBuf>, manifest: &RunManifest) -> Result<Self, PersistError> {
        let root = root.into();
        fs::create_dir_all(root.join("shards"))?;
        sweep_stale_tmp_files(&root);
        let manifest_path = root.join("manifest.json");
        if manifest_path.exists() {
            let text = fs::read_to_string(&manifest_path)?;
            let existing: RunManifest = serde_json::from_str(&text)
                .map_err(|e| PersistError::corrupt(Artifact::Manifest, e.to_string()))?;
            let found = existing.schema_version();
            if found > MANIFEST_SCHEMA {
                return Err(PersistError::SchemaMismatch { found, supported: MANIFEST_SCHEMA });
            }
            if !existing.same_run(manifest) {
                return Err(PersistError::ManifestMismatch(format!(
                    "run dir {} was created for a different (config, shards); \
                     refusing to mix shard outputs",
                    root.display()
                )));
            }
        } else {
            write_atomically(&manifest_path, &encode_pretty("manifest.json", manifest)?)?;
        }
        Ok(RunDir { root, state: Arc::new(PersistState::default()) })
    }

    /// Arm deterministic persistence faults for chaos testing (see
    /// [`PersistFault`]). Call right after [`open`](RunDir::open), before
    /// any artifact writes; an empty slice (the default) keeps every
    /// write on the one-branch fast path.
    pub fn with_persist_faults(mut self, faults: &[PersistFault]) -> Self {
        let torn_writes = faults
            .iter()
            .map(|fault| match fault {
                PersistFault::TornWrite(needle) => (needle.clone(), AtomicBool::new(false)),
            })
            .collect();
        self.state = Arc::new(PersistState {
            errors: AtomicU64::new(self.state.errors.load(Ordering::Relaxed)),
            torn_writes,
        });
        self
    }

    /// Read the manifest of an existing run directory.
    pub fn read_manifest(root: impl AsRef<Path>) -> Result<RunManifest, PersistError> {
        let path = root.as_ref().join("manifest.json");
        let text = fs::read_to_string(&path)?;
        serde_json::from_str(&text)
            .map_err(|e| PersistError::corrupt(Artifact::Manifest, e.to_string()))
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Count one dropped/failed best-effort write. Surfaced as
    /// `persist_errors` in `RunStats` / `summary.json`.
    pub fn note_persist_error(&self) {
        self.state.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// How many best-effort writes this run dir has dropped so far.
    pub fn persist_errors(&self) -> u64 {
        self.state.errors.load(Ordering::Relaxed)
    }

    /// The atomic-write path for every non-streamed artifact, with the
    /// torn-write failpoint: a claimed write lands only its first half,
    /// bypassing temp+rename, is counted as a persist error, and reports
    /// success — artifact writes are best-effort, so the run continues
    /// and the damaged file exercises the resume-side tolerance instead.
    fn write_artifact(&self, path: &Path, contents: &str) -> Result<(), PersistError> {
        if self.state.sabotage(path) {
            let _ = fs::write(path, &contents.as_bytes()[..contents.len() / 2]);
            self.note_persist_error();
            return Ok(());
        }
        write_atomically(path, contents)
    }

    fn shard_path(&self, index: usize) -> PathBuf {
        self.root.join("shards").join(format!("shard-{index:04}.jsonl"))
    }

    /// Load a shard's output if its file is complete and matches `spec`.
    /// Incomplete or stale files yield `None` (the shard reruns). Damaged
    /// lines — a torn tail from a mid-write crash, garbage from a torn
    /// overwrite — are skipped, not fatal: only the summary line decides
    /// completeness, so a torn tail is partial progress, never `Corrupt`.
    pub fn load_shard(&self, spec: &ShardSpec) -> Option<ShardOutput> {
        let file = File::open(self.shard_path(spec.index)).ok()?;
        let mut summary: Option<ShardOutput> = None;
        for line in BufReader::new(file).lines() {
            // An unreadable rest-of-file can hide no valid summary line.
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let Ok(value) = serde_json::parse(&line) else { continue };
            if let Some(obj) = value.as_obj() {
                if let Some(inner) = obj.get("summary") {
                    summary = serde_json::from_value(inner).ok();
                }
            }
        }
        let output = summary?;
        (output.spec == *spec).then_some(output)
    }

    /// Start streaming one shard's progress to disk, counting dropped
    /// lines into this run dir's persist-error counter and `telemetry`'s
    /// [`keys::PERSIST_ERRORS`] keyed counter.
    pub fn shard_writer(
        &self,
        spec: &ShardSpec,
        telemetry: Telemetry,
    ) -> Result<ShardWriter, PersistError> {
        let path = self.shard_path(spec.index);
        let mut writer = BufWriter::new(File::create(&path)?);
        let mut header = serde_json::Map::new();
        header.insert("spec".to_string(), serde_json::to_value(spec));
        writeln!(writer, "{}", encode("shard header", &Value::Obj(header))?)?;
        writer.flush()?;
        Ok(ShardWriter {
            writer,
            shard: spec.index,
            lines: 0,
            state: Arc::clone(&self.state),
            telemetry,
        })
    }

    fn epoch_pool_path(&self, epoch: usize) -> PathBuf {
        self.root.join("epochs").join(format!("epoch-{epoch:04}.json"))
    }

    fn checkpoint_path(&self, shard: usize, epoch: usize) -> PathBuf {
        self.root.join("checkpoints").join(format!("shard-{shard:04}-epoch-{epoch:04}.json"))
    }

    /// Atomically record the cumulative exchange pool after a barrier.
    pub fn write_epoch_pool(&self, epoch: usize, pool: &[String]) -> Result<(), PersistError> {
        fs::create_dir_all(self.root.join("epochs"))?;
        self.write_artifact(&self.epoch_pool_path(epoch), &encode("epoch pool", pool)?)
    }

    /// Load the cumulative exchange pool recorded at a barrier, if any.
    pub fn load_epoch_pool(&self, epoch: usize) -> Option<Vec<String>> {
        let text = fs::read_to_string(self.epoch_pool_path(epoch)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Atomically record one shard's paused-runner checkpoint at a barrier
    /// (taken after pool injection).
    pub fn write_checkpoint(
        &self,
        shard: usize,
        epoch: usize,
        checkpoint: &RunnerCheckpoint,
    ) -> Result<(), PersistError> {
        fs::create_dir_all(self.root.join("checkpoints"))?;
        self.write_artifact(&self.checkpoint_path(shard, epoch), &encode("checkpoint", checkpoint)?)
    }

    /// Load one shard's checkpoint at a barrier, if present and parseable
    /// (a truncated checkpoint simply disqualifies its barrier — resume
    /// falls back to an earlier restorable one).
    pub fn load_checkpoint(&self, shard: usize, epoch: usize) -> Option<RunnerCheckpoint> {
        let text = fs::read_to_string(self.checkpoint_path(shard, epoch)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// The latest barrier a killed multi-epoch run can restore from: the
    /// highest epoch `< epochs - 1` whose pool file and *all* shard
    /// checkpoints load. `None` means restart from scratch.
    pub fn latest_restorable_epoch(&self, shards: usize, epochs: usize) -> Option<usize> {
        (0..epochs.saturating_sub(1)).rev().find(|&epoch| {
            self.load_epoch_pool(epoch).is_some()
                && (0..shards).all(|shard| self.load_checkpoint(shard, epoch).is_some())
        })
    }

    /// Persist the merged campaign result.
    pub fn write_result(&self, result: &CampaignResult) -> Result<(), PersistError> {
        self.write_artifact(&self.root.join("result.json"), &encode_pretty("result.json", result)?)
    }

    /// Load a previously persisted merged result, if any.
    pub fn load_result(&self) -> Option<CampaignResult> {
        let text = fs::read_to_string(self.root.join("result.json")).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Persist the run's execution statistics (worker/shard/epoch counts
    /// and the result-cache hit rate) alongside the merged result.
    /// Serialization failures propagate as [`PersistError::Encode`] —
    /// completeness checks depend on `summary.json`, so a silently
    /// missing or partial summary must never look like success.
    pub fn write_summary(&self, stats: &RunStats) -> Result<(), PersistError> {
        self.write_artifact(&self.root.join("summary.json"), &encode_pretty("summary.json", stats)?)
    }

    /// Load a previously persisted run summary, if any.
    pub fn load_summary(&self) -> Option<RunStats> {
        let text = fs::read_to_string(self.root.join("summary.json")).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Persist the deterministic metrics flight recorder. For fully
    /// computed runs the bytes are a pure function of `(config, K, E)` —
    /// diffable between runs like any other campaign artifact.
    pub fn write_metrics(&self, report: &MetricsReport) -> Result<(), PersistError> {
        self.write_artifact(
            &self.root.join("metrics.json"),
            &encode_pretty("metrics.json", report)?,
        )
    }

    /// Load a previously persisted metrics report, if any.
    pub fn load_metrics(&self) -> Option<MetricsReport> {
        let text = fs::read_to_string(self.root.join("metrics.json")).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Persist the Chrome `trace_event` flight recorder as JSON lines
    /// (`chrome://tracing` and Perfetto both ingest the format). Wall
    /// clock data — unlike `metrics.json` it never reproduces exactly.
    pub fn write_trace(&self, events: &[TraceEvent]) -> Result<(), PersistError> {
        let mut out = String::new();
        for event in events {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        self.write_artifact(&self.root.join("trace.jsonl"), &out)
    }

    /// Load the persisted trace's JSON lines, if any.
    pub fn load_trace_lines(&self) -> Option<Vec<String>> {
        let text = fs::read_to_string(self.root.join("trace.jsonl")).ok()?;
        Some(text.lines().map(str::to_string).collect())
    }
}

/// Streams one shard's records and final summary to its JSONL file.
pub struct ShardWriter {
    writer: BufWriter<File>,
    shard: usize,
    lines: u64,
    state: Arc<PersistState>,
    telemetry: Telemetry,
}

impl ShardWriter {
    /// Append one processed-program progress line. Progress lines are
    /// best-effort — a shard with dropped lines just recomputes on
    /// resume; only the summary line decides completeness — but failures
    /// are *counted*, never silent: each dropped line increments the run
    /// dir's persist-error counter and the [`keys::PERSIST_ERRORS`]
    /// keyed telemetry counter (keyed by shard and line ordinal, so a
    /// redispatched shard's retries collapse).
    pub fn record(&mut self, record: &ProgramRecord) {
        self.lines += 1;
        let mut line = serde_json::Map::new();
        line.insert("record".to_string(), serde_json::to_value(record));
        let written = match serde_json::to_string(&Value::Obj(line)) {
            Ok(text) => writeln!(self.writer, "{text}").and_then(|()| self.writer.flush()).is_ok(),
            Err(_) => false,
        };
        if !written {
            self.state.errors.fetch_add(1, Ordering::Relaxed);
            self.telemetry.add_keyed(
                keys::PERSIST_ERRORS,
                keyed_id(self.shard as u64, self.lines),
                1,
            );
        }
    }

    /// Append the completing summary line. The shard only counts as done
    /// once this succeeds.
    pub fn finish(mut self, output: &ShardOutput) -> Result<(), PersistError> {
        let mut line = serde_json::Map::new();
        line.insert("summary".to_string(), serde_json::to_value(output));
        writeln!(self.writer, "{}", encode("shard summary", &Value::Obj(line))?)?;
        self.writer.flush()?;
        Ok(())
    }
}

/// Remove `.tmp` stragglers a crashed writer left in the run dir's
/// artifact directories (never recursive — artifacts live exactly one
/// level deep). Best-effort: an unreadable dir just skips.
fn sweep_stale_tmp_files(root: &Path) {
    for dir in
        [root.to_path_buf(), root.join("shards"), root.join("epochs"), root.join("checkpoints")]
    {
        let Ok(entries) = fs::read_dir(dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "tmp") && path.is_file() {
                let _ = fs::remove_file(path);
            }
        }
    }
}

/// Write `contents` to a unique dot-prefixed temp file in `path`'s own
/// directory, then atomically rename over `path` — a crash mid-write
/// leaves the old artifact intact (plus a `.tmp` straggler for the next
/// [`RunDir::open`] to sweep), never a torn one. Temp names mix the pid
/// and a process-wide counter so concurrent writers can't collide.
fn write_atomically(path: &Path, contents: &str) -> Result<(), PersistError> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let tmp = path.with_file_name(format!(".{name}.{}-{seq}.tmp", std::process::id()));
    fs::write(&tmp, contents)?;
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm4fp::ApproachKind;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("llm4fp-orchestrator-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> RunManifest {
        RunManifest::new(
            CampaignConfig::new(ApproachKind::Varity).with_budget(6).with_seed(2),
            2,
            1,
        )
    }

    fn record(index: usize) -> ProgramRecord {
        ProgramRecord {
            index,
            program_id: "p".into(),
            strategy: "varity".into(),
            valid: true,
            inconsistencies: 0,
            successful: false,
        }
    }

    #[test]
    fn manifests_round_trip_and_mismatches_are_rejected() {
        let root = temp_dir("manifest");
        let m = manifest();
        let _dir = RunDir::open(&root, &m).unwrap();
        let read = RunDir::read_manifest(&root).unwrap();
        assert_eq!(read, m);
        assert_eq!(read.schema_version(), MANIFEST_SCHEMA);
        // Reopening with the same manifest is fine.
        RunDir::open(&root, &m).unwrap();
        // A different plan is refused.
        let other = RunManifest { shards: 3, ..m };
        assert!(matches!(RunDir::open(&root, &other), Err(PersistError::ManifestMismatch(_))));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn newer_schema_dirs_are_refused_and_older_ones_accepted() {
        let root = temp_dir("schema");
        let m = manifest();
        let _dir = RunDir::open(&root, &m).unwrap();
        // A dir written by a future schema must not be misread.
        let newer = RunManifest { schema: Some(MANIFEST_SCHEMA + 97), ..m.clone() };
        fs::write(root.join("manifest.json"), serde_json::to_string_pretty(&newer).unwrap())
            .unwrap();
        match RunDir::open(&root, &m) {
            Err(PersistError::SchemaMismatch { found, supported }) => {
                assert_eq!(found, MANIFEST_SCHEMA + 97);
                assert_eq!(supported, MANIFEST_SCHEMA);
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        // A pre-versioning dir (no schema field at all) still opens.
        let old = RunManifest { schema: None, ..m.clone() };
        fs::write(root.join("manifest.json"), serde_json::to_string_pretty(&old).unwrap()).unwrap();
        assert_eq!(RunDir::read_manifest(&root).unwrap().schema_version(), 1);
        RunDir::open(&root, &m).unwrap();
        // Unparseable manifests are typed corruption, naming the artifact.
        fs::write(root.join("manifest.json"), "{torn").unwrap();
        assert!(matches!(
            RunDir::open(&root, &m),
            Err(PersistError::Corrupt { artifact: Artifact::Manifest, .. })
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn incomplete_shard_files_do_not_load() {
        let root = temp_dir("incomplete");
        let dir = RunDir::open(&root, &manifest()).unwrap();
        let spec = ShardSpec { index: 0, budget: 3, offset: 0, seed: 2 };
        // Header + records but no summary: must not load.
        let mut writer = dir.shard_writer(&spec, Telemetry::disabled()).unwrap();
        writer.record(&record(0));
        drop(writer);
        assert!(dir.load_shard(&spec).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_shard_tails_are_partial_progress_not_corruption() {
        let root = temp_dir("torn-tail");
        let dir = RunDir::open(&root, &manifest()).unwrap();
        let config = manifest().config;
        let spec = crate::shard::plan_shards(&config, 2)[0];
        let mut writer = dir.shard_writer(&spec, Telemetry::disabled()).unwrap();
        let mut runner = crate::shard::ShardRunner::new(&config, spec, None);
        runner.run_segment(spec.budget, |r| writer.record(r));
        let output = runner.finish();
        writer.finish(&output).unwrap();
        // Tear the tail mid-record, as a crash mid-`writeln!` would: the
        // incomplete shard recomputes (None), with no panic or Corrupt.
        let path = root.join("shards").join("shard-0000.jsonl");
        let full = fs::read_to_string(&path).unwrap();
        let torn: String = full.chars().take(full.len() / 2).collect();
        fs::write(&path, &torn).unwrap();
        assert!(dir.load_shard(&spec).is_none());
        // A damaged *middle* line doesn't disqualify a surviving summary:
        // the skipped line is exactly the progress it failed to record.
        let mut lines: Vec<&str> = full.lines().collect();
        let torn_middle = &lines[1][..lines[1].len() / 2].to_string();
        lines[1] = torn_middle;
        fs::write(&path, lines.join("\n")).unwrap();
        assert_eq!(dir.load_shard(&spec).unwrap(), output);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn epoch_pools_and_checkpoints_round_trip() {
        let root = temp_dir("epochs");
        let dir = RunDir::open(&root, &manifest()).unwrap();
        let config = manifest().config;
        let spec = crate::shard::plan_shards(&config, 2)[0];

        let pool = vec!["void compute(double x) { comp = x; }".to_string()];
        dir.write_epoch_pool(0, &pool).unwrap();
        assert_eq!(dir.load_epoch_pool(0).unwrap(), pool);
        assert!(dir.load_epoch_pool(1).is_none());

        let mut runner = crate::shard::ShardRunner::new(&config, spec, None);
        runner.run_segment(2, |_| {});
        runner.inject(&pool);
        let checkpoint = runner.checkpoint();
        dir.write_checkpoint(0, 0, &checkpoint).unwrap();
        assert_eq!(dir.load_checkpoint(0, 0).unwrap(), checkpoint);

        // Epoch 0 is restorable only once every shard has a checkpoint.
        assert_eq!(dir.latest_restorable_epoch(2, 4), None);
        dir.write_checkpoint(1, 0, &checkpoint).unwrap();
        assert_eq!(dir.latest_restorable_epoch(2, 4), Some(0));
        // A corrupt pool file disqualifies its barrier.
        fs::write(root.join("epochs").join("epoch-0000.json"), "{truncated").unwrap();
        assert_eq!(dir.latest_restorable_epoch(2, 4), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_checkpoints_disqualify_their_barrier_only() {
        let root = temp_dir("truncated-checkpoint");
        let m = RunManifest::new(manifest().config, 1, 4);
        let dir = RunDir::open(&root, &m).unwrap();
        let config = m.config;
        let spec = crate::shard::plan_shards(&config, 1)[0];
        let mut runner = crate::shard::ShardRunner::new(&config, spec, None);
        runner.run_segment(2, |_| {});
        for epoch in 0..2 {
            dir.write_epoch_pool(epoch, &[]).unwrap();
            dir.write_checkpoint(0, epoch, &runner.checkpoint()).unwrap();
        }
        assert_eq!(dir.latest_restorable_epoch(1, 4), Some(1));
        // Truncate the latest barrier's checkpoint mid-file: resume falls
        // back to the previous complete barrier instead of failing.
        let path = root.join("checkpoints").join("shard-0000-epoch-0001.json");
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(dir.load_checkpoint(0, 1).is_none());
        assert_eq!(dir.latest_restorable_epoch(1, 4), Some(0));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn complete_shards_round_trip_and_stale_specs_are_ignored() {
        let root = temp_dir("roundtrip");
        let dir = RunDir::open(&root, &manifest()).unwrap();
        let config = manifest().config;
        let spec = crate::shard::plan_shards(&config, 2)[0];
        let mut writer = dir.shard_writer(&spec, Telemetry::disabled()).unwrap();
        let mut runner = crate::shard::ShardRunner::new(&config, spec, None);
        runner.run_segment(spec.budget, |r| writer.record(r));
        let output = runner.finish();
        writer.finish(&output).unwrap();
        assert_eq!(dir.load_shard(&spec).unwrap(), output);
        assert_eq!(dir.persist_errors(), 0, "healthy writes count nothing");
        // A spec from a different plan must not accept this file.
        let stale = ShardSpec { budget: spec.budget + 1, ..spec };
        assert!(dir.load_shard(&stale).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_tmp_stragglers_are_swept_on_open() {
        let root = temp_dir("sweep");
        let m = manifest();
        let _dir = RunDir::open(&root, &m).unwrap();
        let straggler = root.join(".result.json.999-0.tmp");
        let nested = root.join("checkpoints");
        fs::create_dir_all(&nested).unwrap();
        let nested_straggler = nested.join(".shard-0000-epoch-0000.json.999-1.tmp");
        fs::write(&straggler, "{half").unwrap();
        fs::write(&nested_straggler, "{half").unwrap();
        RunDir::open(&root, &m).unwrap();
        assert!(!straggler.exists());
        assert!(!nested_straggler.exists());
        // The real artifacts survive the sweep.
        assert!(root.join("manifest.json").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_write_faults_fire_once_count_and_damage_the_artifact() {
        let root = temp_dir("torn-write");
        let dir = RunDir::open(&root, &manifest())
            .unwrap()
            .with_persist_faults(&[PersistFault::TornWrite("epoch".into())]);
        let pool = vec!["void compute(double x) { comp = x; }".to_string()];
        // The claimed write reports success but lands torn and counted.
        dir.write_epoch_pool(0, &pool).unwrap();
        assert_eq!(dir.persist_errors(), 1);
        assert_eq!(dir.load_epoch_pool(0), None, "torn pool must not parse");
        // The fault fired: the next matching write is healthy.
        dir.write_epoch_pool(1, &pool).unwrap();
        assert_eq!(dir.persist_errors(), 1);
        assert_eq!(dir.load_epoch_pool(1).unwrap(), pool);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn dropped_record_lines_are_counted_not_silent() {
        let root = temp_dir("dropped-lines");
        let dir = RunDir::open(&root, &manifest()).unwrap();
        let spec = ShardSpec { index: 0, budget: 3, offset: 0, seed: 2 };
        let hub = llm4fp_telemetry::TelemetryHub::new(llm4fp_telemetry::TelemetrySpec::METRICS);
        let mut writer = dir.shard_writer(&spec, hub.lane(0)).unwrap();
        // Swap in a read-only handle: every flush now fails with a real
        // io error, deterministically exercising the dropped-line path.
        writer.writer = BufWriter::new(File::open(root.join("manifest.json")).unwrap());
        writer.record(&record(0));
        writer.record(&record(1));
        assert_eq!(dir.persist_errors(), 2, "both drops counted on the run dir");
        assert_eq!(hub.metrics().get(keys::PERSIST_ERRORS), 2, "and in telemetry");
        let _ = fs::remove_dir_all(&root);
    }
}
