//! Transport-shared supervision: lease-based dispatch state and the
//! barrier bookkeeping every out-of-process transport folds results
//! through.
//!
//! Both pool executors — [`crate::ProcessPoolExecutor`] over pipes and
//! [`crate::RemoteWorkerExecutor`] over sockets — drive the same
//! recovery machinery, extracted here so the dispatch budget, backoff,
//! quarantine and fallback semantics cannot drift between transports:
//!
//! * [`EpochState`] is one epoch's dispatch ledger. Every dispatch holds
//!   a **lease**: a monotonically increasing generation number stamped
//!   into the job and echoed back in the result. A result is accepted
//!   only while its lease generation is still live; an expired or
//!   superseded lease's answer is *discarded*, never merged — which is
//!   what keeps results a pure function of `(config, K, E)` when a slow
//!   worker answers after its shard was re-dispatched elsewhere.
//! * [`SessionCore`] is the transport-independent half of a
//!   [`crate::executor::ShardSession`]: coordinator-side checkpoints,
//!   record streaming offsets, quarantine reports, and the epoch fold
//!   that turns accepted results into deltas, sink replays and barrier
//!   state.
//!
//! The transports keep only what is genuinely theirs: process spawning
//! and pipe pumping in `process_pool`, and sockets, handshakes,
//! heartbeats and reconnect acceptance in `remote`.

use std::collections::VecDeque;

use llm4fp::RunnerCheckpoint;

use crate::executor::{FailurePolicy, OrchestratorError, RecordSink, SessionOutcome, ShardTask};
use crate::shard::{ShardFailureReport, ShardOutput};
use crate::wire::{ShardJob, ShardJobResult};

/// Why an epoch gave up, and whether the terminal failure was the
/// spawn-the-worker class (which maps to
/// [`OrchestratorError::WorkerUnavailable`] — the in-process fallback's
/// trigger) rather than a job-execution failure.
pub struct EpochFailure {
    /// Human-readable description of the terminal failure.
    pub message: String,
    /// Whether the failure means "no worker can be had at all".
    pub worker_unavailable: bool,
}

/// One epoch's dispatch ledger (one lock, held only for bookkeeping).
///
/// Jobs are indexed positions into the session's task list. Each
/// dispatch is identified by its lease generation; at most two leases
/// are live per job (the original plus one straggler duplicate), the
/// first accepted answer wins, and everything else — duplicates, late
/// answers from expired leases — is counted in
/// [`stale_results`](EpochState::stale_results) and dropped.
pub struct EpochState {
    /// Jobs not currently leased anywhere (fresh or requeued).
    queue: VecDeque<usize>,
    /// Live lease generations per job (straggler duplication allows 2).
    leases: Vec<Vec<u64>>,
    /// Failed attempts per job.
    attempts: Vec<u8>,
    /// Last failure per job, for quarantine reports.
    last_error: Vec<Option<String>>,
    done: Vec<bool>,
    remaining: usize,
    results: Vec<Option<ShardJobResult>>,
    /// Jobs that exhausted their budget under the quarantine policy this
    /// epoch (sticky `done`, no result, no requeue).
    quarantined: Vec<bool>,
    failed: Option<EpochFailure>,
    /// Results discarded because their lease was no longer live (late
    /// answers after expiry, straggler-duplicate losers).
    stale_results: u64,
    /// The next lease generation to hand out (0 is never a live lease).
    next_lease: u64,
    max_attempts: u8,
    policy: FailurePolicy,
}

impl EpochState {
    /// Dispatch state over `jobs` jobs, skipping the ones already
    /// quarantined in earlier epochs.
    pub fn new(
        jobs: usize,
        already_quarantined: &[bool],
        max_attempts: u8,
        policy: FailurePolicy,
    ) -> Self {
        debug_assert_eq!(already_quarantined.len(), jobs);
        let queue: VecDeque<usize> = (0..jobs).filter(|&job| !already_quarantined[job]).collect();
        let remaining = queue.len();
        EpochState {
            queue,
            leases: vec![Vec::new(); jobs],
            attempts: vec![0; jobs],
            last_error: (0..jobs).map(|_| None).collect(),
            done: already_quarantined.to_vec(),
            remaining,
            results: (0..jobs).map(|_| None).collect(),
            quarantined: vec![false; jobs],
            failed: None,
            stale_results: 0,
            next_lease: 1,
            max_attempts,
            policy,
        }
    }

    /// Whether the epoch is over (every job answered or the epoch
    /// failed) — the dispatch loops' exit condition.
    pub fn is_settled(&self) -> bool {
        self.failed.is_some() || self.remaining == 0
    }

    /// Fail the whole epoch from outside the per-job budget accounting
    /// (the remote transport's worker-starvation deadline uses this).
    pub fn fail(&mut self, failure: EpochFailure) {
        if self.failed.is_none() {
            self.failed = Some(failure);
        }
    }

    /// How many results arrived under a lease that was no longer live
    /// and were therefore discarded.
    pub fn stale_results(&self) -> u64 {
        self.stale_results
    }

    /// Lease the next job to an idle worker: queued work first, then a
    /// straggler duplicate (first still-running job without one).
    /// Returns the job index and the new lease generation.
    pub fn next_job(&mut self) -> Option<(usize, u64)> {
        let job = self.queue.pop_front().or_else(|| {
            (0..self.done.len()).find(|&job| !self.done[job] && self.leases[job].len() == 1)
        })?;
        let lease = self.next_lease;
        self.next_lease += 1;
        self.leases[job].push(lease);
        Some((job, lease))
    }

    /// A dispatch answered under `lease`. The answer is accepted (and
    /// `true` returned) only if that lease is still live and the job is
    /// not already done; everything else is discarded as stale. First
    /// answer wins; a duplicate's (identical) answer is dropped.
    pub fn complete(&mut self, job: usize, lease: u64, result: ShardJobResult) -> bool {
        let Some(position) = self.leases[job].iter().position(|&live| live == lease) else {
            // The lease expired (or was abandoned) before the answer
            // arrived — the job has been re-dispatched and this result
            // must not race the recomputation.
            self.stale_results += 1;
            return false;
        };
        self.leases[job].swap_remove(position);
        if self.done[job] {
            self.stale_results += 1;
            return false;
        }
        self.done[job] = true;
        self.remaining -= 1;
        self.results[job] = Some(result);
        true
    }

    /// The dispatch under `lease` failed (crash, hang past the lease
    /// deadline, protocol violation, spawn failure). The lease dies;
    /// the job requeues unless it already completed elsewhere or ran
    /// out of attempts — then the failure policy decides between
    /// failing the epoch and quarantining the job. `spawn_failure`
    /// marks the cannot-even-spawn class for the degradation ladder.
    pub fn abandon(&mut self, job: usize, lease: u64, why: String, spawn_failure: bool) {
        if let Some(position) = self.leases[job].iter().position(|&live| live == lease) {
            self.leases[job].swap_remove(position);
        }
        if self.done[job] {
            return;
        }
        self.attempts[job] += 1;
        if self.attempts[job] >= self.max_attempts {
            let budget = self.max_attempts;
            match self.policy {
                FailurePolicy::Abort => {
                    self.failed = Some(EpochFailure {
                        message: format!(
                            "shard job {job} failed {budget} time(s); last error: {why}"
                        ),
                        worker_unavailable: spawn_failure,
                    });
                }
                FailurePolicy::Quarantine => {
                    self.quarantined[job] = true;
                    self.done[job] = true;
                    self.remaining -= 1;
                }
            }
            self.last_error[job] = Some(why);
        } else {
            self.last_error[job] = Some(why);
            self.queue.push_front(job);
        }
    }
}

/// The transport-independent half of an out-of-process shard session:
/// the task list, coordinator-side barrier state, quarantine ledger and
/// the epoch fold. A transport owns one [`SessionCore`], builds an
/// [`EpochState`] per epoch, moves jobs and results however it likes,
/// and folds the settled state back in.
pub struct SessionCore<'s> {
    /// The session's tasks, in task order.
    pub tasks: Vec<ShardTask>,
    sink: &'s dyn RecordSink,
    max_attempts: u8,
    policy: FailurePolicy,
    /// Tasks quarantined in *any* epoch so far (sticky for the session).
    quarantined: Vec<bool>,
    /// Failure report per quarantined task.
    failures: Vec<Option<ShardFailureReport>>,
    /// Coordinator-side shard state between epochs.
    checkpoints: Vec<Option<RunnerCheckpoint>>,
    /// How many of each task's records already reached the sink.
    streamed: Vec<usize>,
    outputs: Vec<Option<ShardOutput>>,
}

impl<'s> SessionCore<'s> {
    /// A core over `tasks`, streaming into `sink`. On resume, records up
    /// to the restored barrier are already accounted for (they live in
    /// the checkpoint, not the fresh shard file) — only newly computed
    /// segments reach the sink, mirroring the in-process writer.
    pub fn new(
        tasks: Vec<ShardTask>,
        sink: &'s dyn RecordSink,
        max_attempts: u8,
        policy: FailurePolicy,
    ) -> Self {
        let checkpoints: Vec<Option<RunnerCheckpoint>> =
            tasks.iter().map(|task| task.checkpoint.clone()).collect();
        let streamed = checkpoints
            .iter()
            .map(|checkpoint| checkpoint.as_ref().map_or(0, |c| c.records.len()))
            .collect();
        SessionCore {
            quarantined: vec![false; tasks.len()],
            failures: tasks.iter().map(|_| None).collect(),
            checkpoints,
            streamed,
            outputs: Vec::new(),
            tasks,
            sink,
            max_attempts,
            policy,
        }
    }

    /// A fresh dispatch ledger for the next epoch, skipping quarantined
    /// tasks.
    pub fn epoch_state(&self) -> EpochState {
        EpochState::new(self.tasks.len(), &self.quarantined, self.max_attempts, self.policy)
    }

    /// The wire job for one dispatch of `job`, stamped with its lease.
    pub fn build_job(&self, job: usize, segment: usize, finish: bool, lease: u64) -> ShardJob {
        let task = &self.tasks[job];
        ShardJob {
            config: task.config.clone(),
            spec: task.spec,
            segment,
            finish,
            checkpoint: self.checkpoints[job].clone(),
            process_slots: task.process_slots,
            telemetry: task.telemetry.is_enabled(),
            lease,
        }
    }

    /// Fold one settled epoch back into the session: translate a failed
    /// epoch into its typed error, absorb this epoch's quarantine
    /// decisions, then — single-threaded, in task order — absorb worker
    /// counters (exactly once per job; stale results were discarded),
    /// replay newly computed records into the sink, and store barrier
    /// state or final outputs. Returns each task's delta.
    pub fn fold_epoch(
        &mut self,
        mut state: EpochState,
        last: bool,
    ) -> Result<Vec<Vec<String>>, OrchestratorError> {
        if let Some(failure) = state.failed.take() {
            return Err(if failure.worker_unavailable {
                OrchestratorError::WorkerUnavailable(failure.message)
            } else {
                OrchestratorError::Executor(failure.message)
            });
        }
        // Fold this epoch's quarantine decisions into the session; the
        // reports surface through `outcome` and `RunStats::failures`.
        for job in 0..self.tasks.len() {
            if state.quarantined[job] && !self.quarantined[job] {
                self.quarantined[job] = true;
                self.failures[job] = Some(ShardFailureReport {
                    shard: self.tasks[job].spec.index,
                    attempts: u32::from(state.attempts[job]),
                    last_error: state.last_error[job].clone().unwrap_or_default(),
                });
            }
        }
        let mut deltas = Vec::with_capacity(self.tasks.len());
        if last {
            self.outputs = (0..self.tasks.len()).map(|_| None).collect();
        }
        for (job, result) in state.results.iter_mut().enumerate() {
            if self.quarantined[job] {
                deltas.push(Vec::new());
                continue;
            }
            let result = result.take().ok_or_else(|| {
                OrchestratorError::Executor(format!("shard job {job} never completed"))
            })?;
            if let Some(snapshot) = &result.telemetry {
                if !snapshot.is_empty() {
                    self.tasks[job].telemetry.absorb(snapshot);
                }
            }
            deltas.push(result.delta);
            if last {
                let output = result.output.ok_or_else(|| {
                    OrchestratorError::Executor(format!(
                        "protocol violation: no output for finished shard job {job}"
                    ))
                })?;
                for record in &output.records[self.streamed[job]..] {
                    self.sink.record(job, record);
                }
                self.sink.complete(job, &output);
                self.outputs[job] = Some(output);
            } else {
                let checkpoint = result.checkpoint.ok_or_else(|| {
                    OrchestratorError::Executor(format!(
                        "protocol violation: no checkpoint for paused shard job {job}"
                    ))
                })?;
                for record in &checkpoint.records[self.streamed[job]..] {
                    self.sink.record(job, record);
                }
                self.streamed[job] = checkpoint.records.len();
                self.checkpoints[job] = Some(checkpoint);
            }
        }
        Ok(deltas)
    }

    /// Broadcast merged exchange pools into the stored checkpoints
    /// (commutative with runner-side injection — see
    /// `RunnerCheckpoint::inject_successful`).
    pub fn inject(&mut self, pools: &[&[String]]) -> Result<(), OrchestratorError> {
        debug_assert_eq!(pools.len(), self.checkpoints.len());
        for (job, pool) in pools.iter().enumerate() {
            if self.quarantined[job] {
                continue;
            }
            let checkpoint = self.checkpoints[job].as_mut().ok_or_else(|| {
                OrchestratorError::Executor(format!(
                    "inject before shard job {job} ever ran an epoch"
                ))
            })?;
            checkpoint.inject_successful(pool);
        }
        Ok(())
    }

    /// Snapshot every paused task for barrier persistence (`None` for a
    /// quarantined task — it has no live barrier state).
    pub fn checkpoints(&mut self) -> Result<Vec<Option<RunnerCheckpoint>>, OrchestratorError> {
        self.checkpoints
            .iter()
            .enumerate()
            .map(|(job, checkpoint)| {
                if self.quarantined[job] {
                    // A quarantined job has no live barrier state; its
                    // stale checkpoint (if any) must not be persisted as
                    // if the barrier were complete.
                    return Ok(None);
                }
                checkpoint.clone().map(Some).ok_or_else(|| {
                    OrchestratorError::Executor(format!(
                        "checkpoint requested before shard job {job} ever ran"
                    ))
                })
            })
            .collect()
    }

    /// Collect every task's outcome after the final epoch: its output,
    /// or the quarantine report explaining why it has none.
    pub fn outcome(&mut self) -> Result<SessionOutcome, OrchestratorError> {
        let outputs = std::mem::take(&mut self.outputs);
        if outputs.len() != self.tasks.len() {
            return Err(OrchestratorError::Executor(
                "finish called before the final epoch ran".into(),
            ));
        }
        let shards = outputs
            .into_iter()
            .zip(std::mem::take(&mut self.failures))
            .enumerate()
            .map(|(job, (output, failure))| match (output, failure) {
                (Some(output), _) => Ok(Ok(output)),
                (None, Some(report)) => Ok(Err(report)),
                (None, None) => {
                    Err(OrchestratorError::Executor(format!("shard job {job} has no output")))
                }
            })
            .collect::<Result<Vec<_>, OrchestratorError>>()?;
        Ok(SessionOutcome { shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process_pool::MAX_DISPATCH_ATTEMPTS;

    fn abort_state(jobs: usize) -> EpochState {
        EpochState::new(jobs, &vec![false; jobs], MAX_DISPATCH_ATTEMPTS, FailurePolicy::Abort)
    }

    fn answer(index: usize, lease: u64) -> ShardJobResult {
        ShardJobResult {
            index,
            delta: vec!["a".into()],
            checkpoint: None,
            output: None,
            telemetry: None,
            lease,
        }
    }

    #[test]
    fn dispatch_state_requeues_failures_and_caps_attempts() {
        let mut state = abort_state(2);
        let (job_a, lease_a) = state.next_job().unwrap();
        assert_eq!(job_a, 0);
        assert_eq!(state.next_job().map(|(job, _)| job), Some(1));
        // Worker holding job 0 crashes twice; job re-enters the queue.
        state.abandon(0, lease_a, "crash".into(), false);
        assert!(state.failed.is_none());
        let (job, lease) = state.next_job().unwrap();
        assert_eq!(job, 0);
        state.abandon(0, lease, "crash".into(), false);
        let (job, lease) = state.next_job().unwrap();
        assert_eq!(job, 0);
        // Third failure exhausts the attempt budget.
        state.abandon(0, lease, "crash".into(), false);
        let failure = state.failed.as_ref().unwrap();
        assert!(failure.message.contains("3 time(s)"));
        assert!(!failure.worker_unavailable);
        assert!(state.is_settled());
    }

    #[test]
    fn spawn_class_failures_mark_worker_unavailable() {
        let mut state = EpochState::new(1, &[false], 1, FailurePolicy::Abort);
        let (job, lease) = state.next_job().unwrap();
        assert_eq!(job, 0);
        state.abandon(0, lease, "cannot spawn worker".into(), true);
        assert!(state.failed.as_ref().unwrap().worker_unavailable);
    }

    #[test]
    fn quarantine_policy_retires_the_job_instead_of_failing_the_epoch() {
        let mut state = EpochState::new(2, &[false, false], 2, FailurePolicy::Quarantine);
        let (job, lease) = state.next_job().unwrap();
        assert_eq!(job, 0);
        state.abandon(0, lease, "crash".into(), false);
        let (job, lease) = state.next_job().unwrap();
        assert_eq!(job, 0);
        state.abandon(0, lease, "crash again".into(), false);
        // Budget exhausted: quarantined, not failed; the epoch continues
        // with the surviving job.
        assert!(state.failed.is_none());
        assert!(state.quarantined[0]);
        assert!(state.done[0]);
        assert_eq!(state.remaining, 1);
        assert_eq!(state.last_error[0].as_deref(), Some("crash again"));
        assert_eq!(state.attempts[0], 2);
        assert_eq!(state.next_job().map(|(job, _)| job), Some(1));
        // Later epochs skip quarantined jobs entirely.
        let later = EpochState::new(2, &[true, false], 2, FailurePolicy::Quarantine);
        assert_eq!(later.remaining, 1);
        assert!(later.done[0]);
        assert_eq!(later.queue, VecDeque::from([1]));
    }

    #[test]
    fn stragglers_get_one_duplicate_and_first_answer_wins() {
        let mut state = abort_state(1);
        let (job, first_lease) = state.next_job().unwrap();
        assert_eq!(job, 0);
        // Queue empty, job 0 still running: an idle worker duplicates it.
        let (job, second_lease) = state.next_job().unwrap();
        assert_eq!(job, 0);
        assert_ne!(first_lease, second_lease);
        assert_eq!(state.leases[0].len(), 2);
        // No third concurrent attempt.
        assert_eq!(state.next_job(), None);
        assert!(state.complete(0, first_lease, answer(0, first_lease)));
        assert_eq!(state.remaining, 0);
        // The loser's answer (identical anyway) is discarded, and a
        // late failure of the duplicate no longer requeues anything.
        assert!(!state.complete(0, second_lease, answer(0, second_lease)));
        assert_eq!(state.remaining, 0);
        assert_eq!(state.stale_results(), 1);
        assert!(state.results[0].is_some());
        assert!(state.queue.is_empty());
    }

    #[test]
    fn late_results_after_lease_expiry_are_discarded_by_generation() {
        // The network-transport scenario: a lease expires (the worker is
        // slow, not dead), the job re-dispatches under a new generation,
        // and only the new generation's answer may land — whichever
        // order the two answers arrive in.
        let mut state = abort_state(1);
        let (job, expired) = state.next_job().unwrap();
        assert_eq!(job, 0);
        // Lease deadline passes: the supervisor abandons the dispatch.
        state.abandon(0, expired, "lease expired after 0.2s".into(), false);
        let (job, fresh) = state.next_job().unwrap();
        assert_eq!(job, 0);
        assert_ne!(expired, fresh);
        // The slow worker's answer straggles in under the dead lease:
        // provably discarded, not merged.
        assert!(!state.complete(0, expired, answer(0, expired)));
        assert_eq!(state.stale_results(), 1);
        assert_eq!(state.remaining, 1, "the job still awaits its live lease");
        assert!(state.results[0].is_none());
        // The re-dispatch answers under the live lease and wins.
        assert!(state.complete(0, fresh, answer(0, fresh)));
        assert_eq!(state.remaining, 0);
        assert_eq!(state.results[0].as_ref().unwrap().lease, fresh);
        // And a *second* copy of the dead answer (duplicate-result
        // fault) is still stale.
        assert!(!state.complete(0, expired, answer(0, expired)));
        assert_eq!(state.stale_results(), 2);
    }

    #[test]
    fn external_failures_settle_the_epoch_once() {
        let mut state = abort_state(1);
        state.fail(EpochFailure { message: "no workers".into(), worker_unavailable: true });
        state.fail(EpochFailure { message: "second".into(), worker_unavailable: false });
        assert!(state.is_settled());
        assert_eq!(state.failed.as_ref().unwrap().message, "no workers");
        assert!(state.failed.as_ref().unwrap().worker_unavailable);
    }
}
