//! The out-of-process shard worker daemon.
//!
//! Spawned by [`llm4fp_orchestrator::ProcessPoolExecutor`], one daemon
//! per worker slot — or dialing a
//! [`llm4fp_orchestrator::RemoteWorkerExecutor`] coordinator over TCP
//! with `--connect HOST:PORT`. The protocol is identical on both
//! transports: a loop of length-prefixed JSON frames (see
//! [`llm4fp_orchestrator::wire`]), opened by a **versioned handshake**
//! (the worker sends `WireReply::Hello` first; the coordinator accepts
//! with `WireRequest::Hello` or refuses in words). Each
//! [`WireRequest::Job`] restores (or freshly creates) a shard runner
//! from the job's checkpoint, runs one segment, and answers with the
//! updated checkpoint — or, on `finish`, the shard's final output. EOF
//! on stdin or a [`WireRequest::Shutdown`] frame exits cleanly; idle
//! [`WireRequest::Ping`]s are answered with `Pong`.
//!
//! The daemon holds **no state between jobs** — any job can be replayed
//! on any worker with byte-identical results, which is what makes the
//! coordinator's crash-redispatch, straggler duplication, and
//! reconnect-and-resume sound. In `--connect` mode a dropped connection
//! is redialed up to `--reconnect` times (spaced by
//! `--reconnect-delay-ms`), and the same retry budget covers dialing a
//! coordinator that has not bound its socket yet.
//!
//! Deterministic fault injection: the coordinator ships this spawn's
//! effective fault set ([`WorkerFault`](llm4fp_orchestrator::WorkerFault)
//! plus worker-side
//! [`NetworkFault`](llm4fp_orchestrator::NetworkFault)s) as JSON in the
//! `LLM4FP_FAULT_PLAN` environment variable (absent on production
//! spawns — the per-job check is then a single branch). The
//! [`WorkerFaultHarness`] decides per received job whether to crash,
//! stall, sabotage the answer frame, drop the connection, delay or
//! duplicate the answer, or tear the stream mid-frame.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use llm4fp_difftest::ProcessBudget;
use llm4fp_orchestrator::faults::{
    FrameSabotage, WorkerFaultHarness, EXIT_DROPPED_CONN, EXIT_SABOTAGED_ANSWER,
};
use llm4fp_orchestrator::wire::{
    self, Hello, ShardJob, ShardJobResult, WireReply, WireRequest, MAX_FRAME_LEN,
};
use llm4fp_orchestrator::ShardRunner;
use llm4fp_telemetry::{TelemetryHub, TelemetrySpec};

/// Run one job: restore-or-create the runner, run the segment, hand the
/// state back. Pure — everything derives from the job's bytes (the
/// lease generation is echoed back verbatim for the coordinator's
/// stale-result discard).
fn run_job(job: ShardJob) -> ShardJobResult {
    let hub =
        TelemetryHub::new(if job.telemetry { TelemetrySpec::METRICS } else { TelemetrySpec::OFF });
    let telemetry = hub.lane(0);
    let mut runner = match job.checkpoint {
        Some(checkpoint) => ShardRunner::from_checkpoint(&job.config, job.spec, None, checkpoint),
        None => ShardRunner::new(&job.config, job.spec, None),
    };
    if job.config.backend.is_external() {
        runner = runner.with_process_budget(Arc::new(ProcessBudget::new(job.process_slots)));
    }
    runner = runner.with_telemetry(telemetry.clone());
    let delta = runner.run_segment(job.segment, |_| {});
    let (checkpoint, output) =
        if job.finish { (None, Some(runner.finish())) } else { (Some(runner.checkpoint()), None) };
    ShardJobResult {
        index: job.spec.index,
        delta,
        checkpoint,
        output,
        telemetry: telemetry.export(),
        lease: job.lease,
    }
}

/// Write a deliberately broken answer in place of `result`'s frame, then
/// exit: the stream is unusable afterwards, so the daemon does not
/// linger. `Corrupt` sends bytes that parse as no frame header at all;
/// `Truncate` sends a header promising the full payload but only half of
/// the bytes, so the coordinator sees a mid-frame EOF.
fn sabotage_answer(writer: &mut impl Write, result: &WireReply, how: FrameSabotage) -> ! {
    match how {
        FrameSabotage::Corrupt => {
            let _ = writer.write_all(b"!corrupt!!\n{\"not\":\"a frame\"}");
        }
        FrameSabotage::Truncate => {
            let payload = serde_json::to_string(result).expect("job results always serialize");
            let bytes = payload.as_bytes();
            let _ = writer.write_all(format!("{:010}\n", bytes.len()).as_bytes());
            let _ = writer.write_all(&bytes[..bytes.len() / 2]);
        }
    }
    let _ = writer.flush();
    std::process::exit(EXIT_SABOTAGED_ANSWER);
}

/// How one stream's service ended.
enum ServeEnd {
    /// The coordinator sent `Shutdown` — exit, never reconnect.
    Shutdown,
    /// Clean EOF from the peer (pipe closed / socket shut down).
    Eof,
    /// An injected fault closed the connection (the process survives and,
    /// in `--connect` mode, reconnects).
    Dropped,
    /// The coordinator refused the handshake (and said why).
    Refused(String),
    /// A read or write on the stream failed.
    Error(io::Error),
}

/// Serve one stream end to end: handshake first (the worker's `Hello`
/// opens the stream; a version skew from either side is a typed refusal
/// and terminal — the binary will not get newer by retrying), then the
/// job/ping loop.
fn serve<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    harness: &mut WorkerFaultHarness,
    max_frame_len: usize,
) -> ServeEnd {
    if let Err(e) =
        wire::write_frame_limited(writer, &WireReply::Hello(Hello::current()), max_frame_len)
    {
        return ServeEnd::Error(e);
    }
    loop {
        let request: WireRequest = match wire::read_frame_limited(reader, max_frame_len) {
            Ok(request) => request,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return ServeEnd::Eof,
            Err(e) => return ServeEnd::Error(e),
        };
        let job = match request {
            WireRequest::Shutdown => return ServeEnd::Shutdown,
            WireRequest::Hello(hello) => {
                if let Err(skew) = hello.check() {
                    eprintln!("llm4fp-worker: {skew}");
                    std::process::exit(2);
                }
                continue;
            }
            WireRequest::Refuse(reason) => return ServeEnd::Refused(reason),
            WireRequest::Ping(token) => {
                if let Err(e) =
                    wire::write_frame_limited(writer, &WireReply::Pong(token), max_frame_len)
                {
                    return ServeEnd::Error(e);
                }
                continue;
            }
            WireRequest::Job(job) => *job,
        };
        let mut sabotage = Default::default();
        if !harness.is_empty() {
            sabotage = harness.on_job(job.spec.index, job.config.backend.is_external());
            if let Some(code) = sabotage.exit_code {
                std::process::exit(code);
            }
            if sabotage.drop_conn {
                // The partition hits before any answer bytes; the
                // coordinator re-dispatches under a fresh lease.
                return ServeEnd::Dropped;
            }
            if let Some(stall) = sabotage.stall {
                std::thread::sleep(stall);
            }
        }
        let answer = WireReply::Result(Box::new(run_job(job)));
        if let Some(how) = sabotage.answer {
            sabotage_answer(writer, &answer, how);
        }
        if let Some(delay) = sabotage.delay {
            std::thread::sleep(delay);
        }
        if sabotage.truncate_stream {
            // Half a frame, then the stream tears: the coordinator sees
            // a malformed frame / mid-frame EOF.
            let payload = serde_json::to_string(&answer).expect("job results always serialize");
            let bytes = payload.as_bytes();
            let _ = writer.write_all(format!("{:010}\n", bytes.len()).as_bytes());
            let _ = writer.write_all(&bytes[..bytes.len() / 2]);
            let _ = writer.flush();
            return ServeEnd::Dropped;
        }
        let copies = if sabotage.duplicate { 2 } else { 1 };
        for _ in 0..copies {
            if let Err(e) = wire::write_frame_limited(writer, &answer, max_frame_len) {
                return ServeEnd::Error(e);
            }
        }
    }
}

struct WorkerArgs {
    /// Dial this coordinator address instead of serving stdin/stdout.
    connect: Option<String>,
    /// How many times to redial after a lost connection (or failed dial).
    reconnect: u32,
    /// Delay between redials.
    reconnect_delay: Duration,
    /// Frame cap (must match the coordinator's).
    max_frame_len: usize,
}

fn parse_args() -> WorkerArgs {
    let mut args = WorkerArgs {
        connect: None,
        reconnect: 16,
        reconnect_delay: Duration::from_millis(100),
        max_frame_len: MAX_FRAME_LEN,
    };
    let mut argv = std::env::args().skip(1);
    let usage = "usage: llm4fp-worker [--connect HOST:PORT] [--reconnect N] \
                 [--reconnect-delay-ms MS] [--max-frame-len BYTES]";
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next().unwrap_or_else(|| {
            eprintln!("llm4fp-worker: {flag} needs a value\n{usage}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--connect" => args.connect = Some(value(&mut argv, "--connect")),
            "--reconnect" => {
                args.reconnect = value(&mut argv, "--reconnect").parse().unwrap_or_else(|_| {
                    eprintln!("llm4fp-worker: --reconnect needs a number\n{usage}");
                    std::process::exit(2);
                });
            }
            "--reconnect-delay-ms" => {
                let ms: u64 =
                    value(&mut argv, "--reconnect-delay-ms").parse().unwrap_or_else(|_| {
                        eprintln!("llm4fp-worker: --reconnect-delay-ms needs a number\n{usage}");
                        std::process::exit(2);
                    });
                args.reconnect_delay = Duration::from_millis(ms);
            }
            "--max-frame-len" => {
                args.max_frame_len =
                    value(&mut argv, "--max-frame-len").parse().unwrap_or_else(|_| {
                        eprintln!("llm4fp-worker: --max-frame-len needs a byte count\n{usage}");
                        std::process::exit(2);
                    });
                if args.max_frame_len == 0 {
                    eprintln!("llm4fp-worker: --max-frame-len must be at least 1 byte (got 0)");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("llm4fp-worker: unknown argument {other:?}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// `--connect` mode: dial the coordinator, serve the stream, and redial
/// (within the `--reconnect` budget) after anything but a `Shutdown` —
/// lost connections *and* refused handshakes both retry, because the
/// coordinator's `RefuseHandshake` chaos fault heals on the next dial.
fn serve_socket(args: &WorkerArgs, harness: &mut WorkerFaultHarness) -> ! {
    let addr = args.connect.as_deref().expect("connect mode");
    let mut redials_left = args.reconnect;
    let fail = |redials_left: &mut u32, what: String| {
        if *redials_left == 0 {
            eprintln!("llm4fp-worker: {what}; reconnect budget exhausted");
            std::process::exit(1);
        }
        *redials_left -= 1;
        std::thread::sleep(args.reconnect_delay);
    };
    loop {
        let stream = match TcpStream::connect(addr) {
            Ok(stream) => stream,
            Err(e) => {
                fail(&mut redials_left, format!("cannot connect to {addr}: {e}"));
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let mut reader = match stream.try_clone() {
            Ok(clone) => BufReader::new(clone),
            Err(e) => {
                fail(&mut redials_left, format!("cannot clone stream: {e}"));
                continue;
            }
        };
        let mut writer = stream;
        match serve(&mut reader, &mut writer, harness, args.max_frame_len) {
            ServeEnd::Shutdown => std::process::exit(0),
            ServeEnd::Eof => {
                fail(&mut redials_left, format!("coordinator {addr} closed the stream"))
            }
            ServeEnd::Dropped => fail(&mut redials_left, "injected connection drop".into()),
            ServeEnd::Refused(reason) => {
                fail(&mut redials_left, format!("handshake refused: {reason}"))
            }
            ServeEnd::Error(e) => fail(&mut redials_left, format!("stream error: {e}")),
        }
    }
}

fn main() {
    let args = parse_args();
    let mut harness = WorkerFaultHarness::from_env();
    if args.connect.is_some() {
        serve_socket(&args, &mut harness);
    }
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    match serve(&mut reader, &mut writer, &mut harness, args.max_frame_len) {
        // Coordinator closed our stdin or asked us to exit: clean.
        ServeEnd::Shutdown | ServeEnd::Eof => {}
        // Over pipes, dropping the connection and dying are the same.
        ServeEnd::Dropped => std::process::exit(EXIT_DROPPED_CONN),
        ServeEnd::Refused(reason) => {
            eprintln!("llm4fp-worker: handshake refused: {reason}");
            std::process::exit(2);
        }
        ServeEnd::Error(e) => {
            eprintln!("llm4fp-worker: protocol error: {e}");
            std::process::exit(2);
        }
    }
    let _ = writer.flush();
}
