//! The out-of-process shard worker daemon.
//!
//! Spawned by [`llm4fp_orchestrator::ProcessPoolExecutor`], one daemon
//! per worker slot. The protocol is a loop of length-prefixed JSON
//! frames on stdin/stdout (see [`llm4fp_orchestrator::wire`]): each
//! [`WireRequest::Job`] restores (or freshly creates) a shard runner
//! from the job's checkpoint, runs one segment, and answers with the
//! updated checkpoint — or, on `finish`, the shard's final output.
//! EOF on stdin or a [`WireRequest::Shutdown`] frame exits cleanly.
//!
//! The daemon holds **no state between jobs** — any job can be replayed
//! on any worker with byte-identical results, which is what makes the
//! coordinator's crash-redispatch and straggler duplication sound.
//!
//! Deterministic fault injection: the coordinator ships this spawn's
//! effective [`WorkerFault`](llm4fp_orchestrator::WorkerFault) set as
//! JSON in the `LLM4FP_FAULT_PLAN` environment variable (absent on
//! production spawns — the per-job check is then a single branch). The
//! [`WorkerFaultHarness`] decides per received job whether to crash,
//! stall, simulate an external-compiler spawn error, or sabotage the
//! answer frame (garbage bytes / a truncated frame).

use std::io::{self, Write};
use std::sync::Arc;

use llm4fp_difftest::ProcessBudget;
use llm4fp_orchestrator::faults::{FrameSabotage, WorkerFaultHarness, EXIT_SABOTAGED_ANSWER};
use llm4fp_orchestrator::wire::{self, ShardJob, ShardJobResult, WireRequest};
use llm4fp_orchestrator::ShardRunner;
use llm4fp_telemetry::{TelemetryHub, TelemetrySpec};

/// Run one job: restore-or-create the runner, run the segment, hand the
/// state back. Pure — everything derives from the job's bytes.
fn run_job(job: ShardJob) -> ShardJobResult {
    let hub =
        TelemetryHub::new(if job.telemetry { TelemetrySpec::METRICS } else { TelemetrySpec::OFF });
    let telemetry = hub.lane(0);
    let mut runner = match job.checkpoint {
        Some(checkpoint) => ShardRunner::from_checkpoint(&job.config, job.spec, None, checkpoint),
        None => ShardRunner::new(&job.config, job.spec, None),
    };
    if job.config.backend.is_external() {
        runner = runner.with_process_budget(Arc::new(ProcessBudget::new(job.process_slots)));
    }
    runner = runner.with_telemetry(telemetry.clone());
    let delta = runner.run_segment(job.segment, |_| {});
    let (checkpoint, output) =
        if job.finish { (None, Some(runner.finish())) } else { (Some(runner.checkpoint()), None) };
    ShardJobResult {
        index: job.spec.index,
        delta,
        checkpoint,
        output,
        telemetry: telemetry.export(),
    }
}

/// Write a deliberately broken answer in place of `result`'s frame, then
/// exit: the stream is unusable afterwards, so the daemon does not
/// linger. `Corrupt` sends bytes that parse as no frame header at all;
/// `Truncate` sends a header promising the full payload but only half of
/// the bytes, so the coordinator sees a mid-frame EOF.
fn sabotage_answer(writer: &mut impl Write, result: &ShardJobResult, how: FrameSabotage) -> ! {
    match how {
        FrameSabotage::Corrupt => {
            let _ = writer.write_all(b"!corrupt!!\n{\"not\":\"a frame\"}");
        }
        FrameSabotage::Truncate => {
            let payload = serde_json::to_string(result).expect("job results always serialize");
            let bytes = payload.as_bytes();
            let _ = writer.write_all(format!("{:010}\n", bytes.len()).as_bytes());
            let _ = writer.write_all(&bytes[..bytes.len() / 2]);
        }
    }
    let _ = writer.flush();
    std::process::exit(EXIT_SABOTAGED_ANSWER);
}

fn main() {
    let mut harness = WorkerFaultHarness::from_env();
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    loop {
        let request: WireRequest = match wire::read_frame(&mut reader) {
            Ok(request) => request,
            // Coordinator closed our stdin: the clean shutdown signal.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => {
                eprintln!("llm4fp-worker: protocol error: {e}");
                std::process::exit(2);
            }
        };
        let job = match request {
            WireRequest::Shutdown => break,
            WireRequest::Job(job) => *job,
        };
        let mut answer_sabotage = None;
        if !harness.is_empty() {
            let sabotage = harness.on_job(job.spec.index, job.config.backend.is_external());
            if let Some(code) = sabotage.exit_code {
                std::process::exit(code);
            }
            if let Some(stall) = sabotage.stall {
                std::thread::sleep(stall);
            }
            answer_sabotage = sabotage.answer;
        }
        let result = run_job(job);
        if let Some(how) = answer_sabotage {
            sabotage_answer(&mut writer, &result, how);
        }
        if let Err(e) = wire::write_frame(&mut writer, &result) {
            eprintln!("llm4fp-worker: cannot answer: {e}");
            std::process::exit(2);
        }
    }
    let _ = writer.flush();
}
