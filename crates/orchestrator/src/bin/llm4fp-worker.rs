//! The out-of-process shard worker daemon.
//!
//! Spawned by [`llm4fp_orchestrator::ProcessPoolExecutor`], one daemon
//! per worker slot. The protocol is a loop of length-prefixed JSON
//! frames on stdin/stdout (see [`llm4fp_orchestrator::wire`]): each
//! [`WireRequest::Job`] restores (or freshly creates) a shard runner
//! from the job's checkpoint, runs one segment, and answers with the
//! updated checkpoint — or, on `finish`, the shard's final output.
//! EOF on stdin or a [`WireRequest::Shutdown`] frame exits cleanly.
//!
//! The daemon holds **no state between jobs** — any job can be replayed
//! on any worker with byte-identical results, which is what makes the
//! coordinator's crash-redispatch and straggler duplication sound.
//!
//! Deterministic fault-injection knobs for the orchestrator test suite
//! (read once at startup, applied by the coordinator only to worker
//! slot 0's first spawn):
//!
//! * `LLM4FP_WORKER_CRASH_AT_JOB=<n>` — exit(101) upon receiving the
//!   n-th job, *before* answering (simulates a mid-epoch crash).
//! * `LLM4FP_WORKER_STALL_MS=<ms>` — sleep before every answer
//!   (simulates a straggler/hang for the timeout-kill path).

use std::io::{self, Write};
use std::sync::Arc;
use std::time::Duration;

use llm4fp_difftest::ProcessBudget;
use llm4fp_orchestrator::wire::{self, ShardJob, ShardJobResult, WireRequest};
use llm4fp_orchestrator::ShardRunner;
use llm4fp_telemetry::{TelemetryHub, TelemetrySpec};

fn env_number(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Run one job: restore-or-create the runner, run the segment, hand the
/// state back. Pure — everything derives from the job's bytes.
fn run_job(job: ShardJob) -> ShardJobResult {
    let hub =
        TelemetryHub::new(if job.telemetry { TelemetrySpec::METRICS } else { TelemetrySpec::OFF });
    let telemetry = hub.lane(0);
    let mut runner = match job.checkpoint {
        Some(checkpoint) => ShardRunner::from_checkpoint(&job.config, job.spec, None, checkpoint),
        None => ShardRunner::new(&job.config, job.spec, None),
    };
    if job.config.backend.is_external() {
        runner = runner.with_process_budget(Arc::new(ProcessBudget::new(job.process_slots)));
    }
    runner = runner.with_telemetry(telemetry.clone());
    let delta = runner.run_segment(job.segment, |_| {});
    let (checkpoint, output) =
        if job.finish { (None, Some(runner.finish())) } else { (Some(runner.checkpoint()), None) };
    ShardJobResult {
        index: job.spec.index,
        delta,
        checkpoint,
        output,
        telemetry: telemetry.export(),
    }
}

fn main() {
    let crash_at_job = env_number("LLM4FP_WORKER_CRASH_AT_JOB");
    let stall = env_number("LLM4FP_WORKER_STALL_MS").map(Duration::from_millis);
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    let mut handled: u64 = 0;
    loop {
        let request: WireRequest = match wire::read_frame(&mut reader) {
            Ok(request) => request,
            // Coordinator closed our stdin: the clean shutdown signal.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => {
                eprintln!("llm4fp-worker: protocol error: {e}");
                std::process::exit(2);
            }
        };
        let job = match request {
            WireRequest::Shutdown => break,
            WireRequest::Job(job) => *job,
        };
        handled += 1;
        if crash_at_job == Some(handled) {
            std::process::exit(101);
        }
        if let Some(stall) = stall {
            std::thread::sleep(stall);
        }
        let result = run_job(job);
        if let Err(e) = wire::write_frame(&mut writer, &result) {
            eprintln!("llm4fp-worker: cannot answer: {e}");
            std::process::exit(2);
        }
    }
    let _ = writer.flush();
}
