//! The socket transport: `llm4fp-worker --connect` daemons supervised
//! over TCP by leases, heartbeats and reconnect-and-resume.
//!
//! [`RemoteWorkerExecutor`] implements [`ShardExecutor`] with the same
//! wire vocabulary as the pipe transport ([`crate::wire`]) served over a
//! TCP socket: the coordinator binds a listener, workers dial in, each
//! stream opens with the versioned handshake (worker
//! [`WireReply::Hello`] first, coordinator [`WireRequest::Hello`] or a
//! typed [`WireRequest::Refuse`]), and then jobs flow exactly as over
//! pipes. In CI and tests the socket is loopback with self-spawned
//! workers; the same executor accepts external workers dialing from
//! anywhere (`worker_procs = 0` spawns nothing and waits).
//!
//! Supervision is built for a transport that can *lose the network*, on
//! the shared [`crate::supervisor`] machinery:
//!
//! * **Leases** — every dispatch holds a deadline lease
//!   ([`with_lease_timeout`](RemoteWorkerExecutor::with_lease_timeout))
//!   identified by a generation number stamped into the job. A worker
//!   that neither answers nor disconnects within the deadline loses the
//!   lease: the job re-enters the queue for any connection, and the late
//!   answer — should it ever arrive — is discarded by generation
//!   ([`EpochState::complete`]), never merged. Results stay a pure
//!   function of `(config, K, E)` no matter how late the network
//!   delivers stale bytes.
//! * **Heartbeats** — an idle connection is probed with
//!   [`WireRequest::Ping`] every
//!   [`with_heartbeat`](RemoteWorkerExecutor::with_heartbeat) interval;
//!   a missed [`WireReply::Pong`] retires the connection, so a silent
//!   half-open socket cannot hold a future lease forever.
//! * **Reconnect-and-resume** — a dropped worker redials (the worker
//!   binary's `--reconnect` budget), passes the handshake again, and is
//!   simply handed the next queued job: shard state lives
//!   coordinator-side between epochs (checkpoints in the
//!   [`SessionCore`]), so the resumed job carries everything the fresh
//!   connection needs. Worker processes hold no state between jobs.
//! * **Worker starvation** — an epoch with no connected workers for
//!   [`with_worker_wait`](RemoteWorkerExecutor::with_worker_wait)
//!   surfaces [`OrchestratorError::WorkerUnavailable`], the trigger for
//!   the in-process fallback rung of the degradation ladder.
//!
//! Deterministic network chaos drives all of this through the
//! [`FaultPlan::network`] section
//! ([`with_fault_plan`](RemoteWorkerExecutor::with_fault_plan)):
//! worker-side [`NetworkFault`](crate::faults::NetworkFault)s ship to
//! the first worker process via the fault env, and `RefuseHandshake`
//! arms the coordinator's acceptor. A fault may cost time, never bits —
//! Abort-mode results under every network fault are bit-identical to
//! the fault-free in-process run.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use llm4fp::RunnerCheckpoint;
use llm4fp_extcc::{group_spawn, kill_group};
use llm4fp_telemetry::{keys, Telemetry};

use crate::executor::{
    FailurePolicy, OrchestratorError, RecordSink, SessionOutcome, ShardExecutor, ShardSession,
    ShardTask,
};
use crate::faults::{self, FaultPlan};
use crate::process_pool::{resolve_worker_bin, MAX_DISPATCH_ATTEMPTS};
use crate::supervisor::{EpochFailure, EpochState, SessionCore};
use crate::wire::{self, Hello, ShardJob, ShardJobResult, WireReply, WireRequest, MAX_FRAME_LEN};

/// How long an accepted connection gets to present its `Hello` before
/// the handler gives up on it (keeps a port-scanner's silent connection
/// from pinning a handler thread forever).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// The [`ShardExecutor`] backed by workers dialing in over TCP.
#[derive(Debug, Clone)]
pub struct RemoteWorkerExecutor {
    listen_addr: String,
    worker_procs: usize,
    worker_bin: Option<PathBuf>,
    lease_timeout: Duration,
    heartbeat: Duration,
    worker_wait: Duration,
    max_dispatch_attempts: u8,
    policy: FailurePolicy,
    faults: FaultPlan,
    max_frame_len: usize,
    /// The address actually bound at [`begin`](ShardExecutor::begin)
    /// (resolves `:0` to the kernel-assigned port), shared across clones
    /// so callers can tell external workers where to dial.
    bound: Arc<Mutex<Option<SocketAddr>>>,
}

impl RemoteWorkerExecutor {
    /// An executor listening on loopback (`127.0.0.1:0`, kernel-assigned
    /// port) that self-spawns `worker_procs` loopback worker daemons at
    /// session start (`llm4fp-worker --connect`). `0` spawns nothing —
    /// the session then serves whatever external workers dial
    /// [`bound_addr`](Self::bound_addr).
    pub fn new(worker_procs: usize) -> Self {
        RemoteWorkerExecutor {
            listen_addr: "127.0.0.1:0".into(),
            worker_procs,
            worker_bin: None,
            lease_timeout: Duration::from_secs(300),
            heartbeat: Duration::from_secs(2),
            worker_wait: Duration::from_secs(30),
            max_dispatch_attempts: MAX_DISPATCH_ATTEMPTS,
            policy: FailurePolicy::default(),
            faults: FaultPlan::none(),
            max_frame_len: MAX_FRAME_LEN,
            bound: Arc::new(Mutex::new(None)),
        }
    }

    /// Listen on an explicit address (e.g. `0.0.0.0:7070` to accept
    /// workers from other machines) instead of an ephemeral loopback
    /// port.
    pub fn listen(mut self, addr: impl Into<String>) -> Self {
        self.listen_addr = addr.into();
        self
    }

    /// Pin the self-spawned worker daemon binary path explicitly
    /// (ignored with `worker_procs == 0`).
    pub fn with_worker_bin(mut self, bin: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(bin.into());
        self
    }

    /// The deadline lease on one dispatched segment. A worker that
    /// neither answers nor disconnects within it loses the lease — the
    /// job re-dispatches and the late answer is discarded by lease
    /// generation. The remote analogue of
    /// [`ProcessPoolExecutor::with_shard_timeout`](crate::ProcessPoolExecutor::with_shard_timeout).
    pub fn with_lease_timeout(mut self, lease: Duration) -> Self {
        self.lease_timeout = lease;
        self
    }

    /// How long a connection may sit idle before the coordinator probes
    /// it with a ping; a missed pong retires the connection.
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// How long an epoch tolerates *zero connected workers* before
    /// failing with [`OrchestratorError::WorkerUnavailable`] (the
    /// degradation ladder's trigger). The clock resets whenever any
    /// worker is connected.
    pub fn with_worker_wait(mut self, wait: Duration) -> Self {
        self.worker_wait = wait;
        self
    }

    /// How many times one job may fail (lease expiry, dropped
    /// connection, protocol violation) before the
    /// [`on_shard_failure`](Self::on_shard_failure) policy applies.
    pub fn max_dispatch_attempts(mut self, attempts: u8) -> Self {
        self.max_dispatch_attempts = attempts;
        self
    }

    /// What happens when a shard job exhausts its dispatch budget — see
    /// [`FailurePolicy`].
    pub fn on_shard_failure(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arm a deterministic [`FaultPlan`]: worker faults and worker-side
    /// [`network`](FaultPlan::network) faults ship to the first
    /// self-spawned worker via [`faults::FAULT_PLAN_ENV`];
    /// [`RefuseHandshake`](crate::faults::NetworkFault::RefuseHandshake)
    /// arms the acceptor to refuse the first incoming handshake.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Cap on one wire frame's payload, both directions of every
    /// connection (forwarded to self-spawned workers via
    /// `--max-frame-len`). Defaults to [`MAX_FRAME_LEN`] (256 MiB); `0`
    /// is rejected at [`begin`](ShardExecutor::begin) with
    /// [`OrchestratorError::InvalidFrameLen`].
    pub fn with_max_frame_len(mut self, max_frame_len: usize) -> Self {
        self.max_frame_len = max_frame_len;
        self
    }

    /// The socket address the live session actually bound (`None`
    /// before [`begin`](ShardExecutor::begin)). With `listen("…:0")`
    /// this is where external workers must dial.
    pub fn bound_addr(&self) -> Option<SocketAddr> {
        *self.bound.lock().unwrap()
    }
}

impl ShardExecutor for RemoteWorkerExecutor {
    fn name(&self) -> &'static str {
        "remote"
    }

    /// Workers run in other processes (possibly other machines) and
    /// never see the coordinator's result cache.
    fn shares_cache(&self) -> bool {
        false
    }

    fn begin<'s>(
        &self,
        tasks: Vec<ShardTask>,
        sink: &'s dyn RecordSink,
    ) -> Result<Box<dyn ShardSession + 's>, OrchestratorError> {
        if self.max_dispatch_attempts == 0 {
            return Err(OrchestratorError::InvalidDispatchAttempts);
        }
        if self.max_frame_len == 0 {
            return Err(OrchestratorError::InvalidFrameLen);
        }
        // A coordinator that cannot even bind has no transport at all —
        // the WorkerUnavailable class, so the degradation ladder applies.
        let listener = TcpListener::bind(&self.listen_addr).map_err(|e| {
            OrchestratorError::WorkerUnavailable(format!(
                "cannot bind coordinator socket {}: {e}",
                self.listen_addr
            ))
        })?;
        let addr = listener.local_addr().map_err(|e| {
            OrchestratorError::WorkerUnavailable(format!("cannot resolve bound address: {e}"))
        })?;
        listener.set_nonblocking(true).map_err(|e| {
            OrchestratorError::WorkerUnavailable(format!("cannot configure listener: {e}"))
        })?;
        *self.bound.lock().unwrap() = Some(addr);
        let shared = Arc::new(Shared {
            slot: Mutex::new(EpochSlot { epoch_id: 0, active: None }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers_live: AtomicUsize::new(0),
            refuse_budget: AtomicU32::new(self.faults.refuse_handshakes()),
            lease_timeout: self.lease_timeout,
            heartbeat: self.heartbeat,
            max_frame_len: self.max_frame_len,
        });
        let acceptor = thread::spawn({
            let shared = Arc::clone(&shared);
            move || accept_loop(&listener, &shared)
        });
        let mut session = RemoteSession {
            core: SessionCore::new(tasks, sink, self.max_dispatch_attempts, self.policy),
            shared,
            acceptor: Some(acceptor),
            children: Vec::new(),
            addr,
            worker_wait: self.worker_wait,
            pool_start: Instant::now(),
        };
        if self.worker_procs > 0 {
            let bin = resolve_worker_bin(self.worker_bin.as_deref())?;
            for slot in 0..self.worker_procs {
                let mut cmd = Command::new(&bin);
                cmd.arg("--connect")
                    .arg(addr.to_string())
                    .arg("--reconnect")
                    .arg("64")
                    .arg("--reconnect-delay-ms")
                    .arg("50")
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::inherit());
                if self.max_frame_len != MAX_FRAME_LEN {
                    cmd.arg("--max-frame-len").arg(self.max_frame_len.to_string());
                }
                // Fault payloads ship to the first worker *process* only;
                // job ordinals count across its reconnects, so "drop at
                // job 1, then heal" stays deterministic.
                if let Some(value) = self.faults.worker_env(slot == 0) {
                    cmd.env(faults::FAULT_PLAN_ENV, value);
                }
                group_spawn(&mut cmd);
                match cmd.spawn() {
                    Ok(child) => session.children.push(child),
                    Err(e) => {
                        // `session` drops here: transport shut down, any
                        // already-spawned siblings reaped.
                        return Err(OrchestratorError::WorkerUnavailable(format!(
                            "cannot spawn loopback worker {}: {e}",
                            bin.display()
                        )));
                    }
                }
            }
        }
        Ok(Box::new(session))
    }
}

/// Coordinator state every connection thread shares.
struct Shared {
    slot: Mutex<EpochSlot>,
    /// Notified on: epoch installed, job completed/abandoned, shutdown.
    cv: Condvar,
    shutdown: AtomicBool,
    /// Connections that passed the handshake and are serving (feeds the
    /// session's worker-starvation clock).
    workers_live: AtomicUsize,
    /// Remaining injected handshake refusals
    /// ([`crate::faults::NetworkFault::RefuseHandshake`]).
    refuse_budget: AtomicU32,
    lease_timeout: Duration,
    heartbeat: Duration,
    max_frame_len: usize,
}

/// The one live epoch (or none, between epochs), versioned by
/// `epoch_id` so a result or abandonment that outlives its epoch can
/// never touch the next epoch's ledger.
struct EpochSlot {
    epoch_id: u64,
    active: Option<ActiveEpoch>,
}

struct ActiveEpoch {
    state: EpochState,
    /// Pre-built wire jobs (lease 0); a dispatch clones one and stamps
    /// the live lease generation.
    jobs: Vec<ShardJob>,
    /// Each job's telemetry lane, cloned out of the session's tasks so
    /// connection threads can observe without borrowing the session.
    telemetry: Vec<Telemetry>,
    pool_start: Instant,
}

/// One dispatch this connection made, so a stray result frame (a
/// duplicate, or a late answer after lease expiry) can be routed to the
/// ledger for stale-discard accounting. Entries are only trusted within
/// their own epoch.
struct Dispatch {
    epoch_id: u64,
    job: usize,
    lease: u64,
}

fn settle(shared: &Shared, epoch_id: u64, job: usize, lease: u64, result: ShardJobResult) {
    {
        let mut slot = shared.slot.lock().unwrap();
        if slot.epoch_id == epoch_id {
            if let Some(epoch) = slot.active.as_mut() {
                // `false` means the lease was no longer live — the result
                // is discarded and counted, exactly as leases promise.
                let _ = epoch.state.complete(job, lease, result);
            }
        }
    }
    shared.cv.notify_all();
}

fn abandon(shared: &Shared, epoch_id: u64, job: usize, lease: u64, why: String) {
    {
        let mut slot = shared.slot.lock().unwrap();
        if slot.epoch_id == epoch_id {
            if let Some(epoch) = slot.active.as_mut() {
                epoch.state.abandon(job, lease, why, false);
            }
        }
    }
    shared.cv.notify_all();
}

/// Route a result frame that is not the currently awaited answer: if it
/// matches a dispatch this connection made *in the current epoch*, feed
/// it to the ledger (which discards it by generation); anything else —
/// a leftover from a folded epoch — is dropped on the floor.
fn feed_stray(shared: &Shared, sent: &[Dispatch], result: ShardJobResult) {
    if let Some(d) = sent.iter().find(|d| d.lease == result.lease) {
        settle(shared, d.epoch_id, d.job, d.lease, result);
    }
}

/// The accept loop: non-blocking accept with a short poll so shutdown is
/// honored promptly; every accepted stream gets its own handler thread.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                thread::spawn(move || drive_connection(stream, &shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(25));
            }
            Err(_) => thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Decrements the live-worker count (and wakes the starvation clock)
/// when a connection handler exits, however it exits.
struct LiveGuard<'a>(&'a Shared);

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        self.0.workers_live.fetch_sub(1, Ordering::SeqCst);
        self.0.cv.notify_all();
    }
}

/// Shuts the socket down (both directions, across all clones) when the
/// handler exits, so the reader thread unblocks and the worker sees a
/// closed stream instead of a silent half-open connection.
struct SocketGuard(TcpStream);

impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = self.0.shutdown(std::net::Shutdown::Both);
    }
}

/// What one dispatch's wait ended with.
enum Verdict {
    Answered(Box<ShardJobResult>),
    LeaseExpired,
    Dead(String),
}

/// Serve one accepted connection end to end: handshake, then a loop of
/// lease → dispatch → bounded wait, with heartbeat probes while idle.
fn drive_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    let Ok(mut reader_stream) = stream.try_clone() else { return };
    let mut writer = stream;
    let max = shared.max_frame_len;
    // The worker opens: its Hello must be the stream's first frame.
    let hello = match wire::read_frame_limited::<WireReply, _>(&mut reader_stream, max) {
        Ok(WireReply::Hello(hello)) => hello,
        // Not a worker (or a worker that never spoke): nothing to refuse
        // in words, just hang up.
        Ok(_) | Err(_) => return,
    };
    if let Err(skew) = hello.check() {
        // A version skew is a refusal in words, never undefined framing.
        let _ = wire::write_frame_limited(&mut writer, &WireRequest::Refuse(skew.to_string()), max);
        return;
    }
    if shared
        .refuse_budget
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
    {
        let _ = wire::write_frame_limited(
            &mut writer,
            &WireRequest::Refuse("injected handshake refusal (fault plan)".into()),
            max,
        );
        return;
    }
    if wire::write_frame_limited(&mut writer, &WireRequest::Hello(Hello::current()), max).is_err() {
        return;
    }
    let _ = writer.set_read_timeout(None);
    let Ok(socket_guard) = writer.try_clone().map(SocketGuard) else { return };
    let _socket_guard = socket_guard;
    shared.workers_live.fetch_add(1, Ordering::SeqCst);
    shared.cv.notify_all();
    let _live = LiveGuard(shared);
    // Detached reader: turns the blocking socket into a channel of
    // frames the driver can wait on with deadlines. It exits when the
    // socket closes (worker death, SocketGuard) or the driver drops `rx`.
    let (tx, rx) = mpsc::channel::<io::Result<WireReply>>();
    thread::spawn(move || loop {
        match wire::read_frame_limited::<WireReply, _>(&mut reader_stream, max) {
            Ok(frame) => {
                if tx.send(Ok(frame)).is_err() {
                    break;
                }
            }
            Err(e) => {
                let _ = tx.send(Err(e));
                break;
            }
        }
    });
    let mut sent: Vec<Dispatch> = Vec::new();
    let mut ping_token: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = wire::write_frame_limited(&mut writer, &WireRequest::Shutdown, max);
            return;
        }
        let next = {
            let mut slot = shared.slot.lock().unwrap();
            let epoch_id = slot.epoch_id;
            match slot.active.as_mut() {
                Some(epoch) if !epoch.state.is_settled() => {
                    epoch.state.next_job().map(|(job, lease)| {
                        let mut wire_job = epoch.jobs[job].clone();
                        wire_job.lease = lease;
                        (
                            epoch_id,
                            job,
                            lease,
                            wire_job,
                            epoch.telemetry[job].clone(),
                            epoch.pool_start,
                        )
                    })
                }
                _ => None,
            }
        };
        let Some((epoch_id, job, lease, wire_job, telemetry, pool_start)) = next else {
            // Idle: park until new work arrives or the heartbeat is due.
            {
                let slot = shared.slot.lock().unwrap();
                let (_slot, timeout) = shared.cv.wait_timeout(slot, shared.heartbeat).unwrap();
                if !timeout.timed_out() {
                    continue;
                }
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                continue; // the top of the loop sends the Shutdown frame
            }
            ping_token += 1;
            if wire::write_frame_limited(&mut writer, &WireRequest::Ping(ping_token), max).is_err()
            {
                return;
            }
            let deadline = Instant::now() + shared.heartbeat.max(Duration::from_secs(1));
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return; // missed heartbeat: the connection is dead
                }
                match rx.recv_timeout(left) {
                    Ok(Ok(WireReply::Pong(_))) => break,
                    Ok(Ok(WireReply::Result(result))) => feed_stray(shared, &sent, *result),
                    Ok(Ok(WireReply::Hello(_))) | Ok(Err(_)) | Err(_) => return,
                }
            }
            continue;
        };
        // Dispatch records from folded epochs can never be trusted again
        // (lease generations restart per epoch).
        if sent.first().is_some_and(|d| d.epoch_id != epoch_id) {
            sent.clear();
        }
        sent.push(Dispatch { epoch_id, job, lease });
        let shard = wire_job.spec.index;
        telemetry.observe(keys::QUEUE_WAIT, pool_start.elapsed());
        let span = telemetry.span(keys::SPAN_SHARD_RUN);
        if let Err(e) =
            wire::write_frame_limited(&mut writer, &WireRequest::Job(Box::new(wire_job)), max)
        {
            drop(span);
            abandon(shared, epoch_id, job, lease, format!("write to worker failed: {e}"));
            return;
        }
        let deadline = Instant::now() + shared.lease_timeout;
        let verdict = loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break Verdict::LeaseExpired;
            }
            match rx.recv_timeout(left) {
                Ok(Ok(WireReply::Result(result))) if result.lease == lease => {
                    break Verdict::Answered(result);
                }
                // A duplicate (or an even later straggler): route it to
                // the ledger's stale-discard path and keep waiting.
                Ok(Ok(WireReply::Result(result))) => feed_stray(shared, &sent, *result),
                // A pong from an idle probe the worker answered late.
                Ok(Ok(WireReply::Pong(_))) => {}
                Ok(Ok(WireReply::Hello(_))) => {
                    break Verdict::Dead("protocol violation: mid-stream Hello".into());
                }
                Ok(Err(e)) => break Verdict::Dead(format!("worker connection failed: {e}")),
                Err(RecvTimeoutError::Timeout) => break Verdict::LeaseExpired,
                Err(RecvTimeoutError::Disconnected) => {
                    break Verdict::Dead("worker stream closed".into());
                }
            }
        };
        drop(span);
        match verdict {
            Verdict::Answered(result) => {
                if result.index != shard {
                    abandon(
                        shared,
                        epoch_id,
                        job,
                        lease,
                        format!("protocol violation: answer for shard {}", result.index),
                    );
                    return;
                }
                settle(shared, epoch_id, job, lease, *result);
            }
            Verdict::LeaseExpired => {
                // The lease dies first — the job re-dispatches right away
                // — then the connection gets one more lease-length window
                // to prove it was slow rather than dead: its late answer
                // (discarded as stale by generation) lets the connection
                // be reused; silence retires it.
                abandon(
                    shared,
                    epoch_id,
                    job,
                    lease,
                    format!("lease expired after {:.1}s", shared.lease_timeout.as_secs_f64()),
                );
                let drain = Instant::now() + shared.lease_timeout;
                loop {
                    let left = drain.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return;
                    }
                    match rx.recv_timeout(left) {
                        Ok(Ok(WireReply::Result(result))) => {
                            let late_answer = result.lease == lease;
                            feed_stray(shared, &sent, *result);
                            if late_answer {
                                break;
                            }
                        }
                        Ok(Ok(WireReply::Pong(_))) => {}
                        Ok(Ok(WireReply::Hello(_))) | Ok(Err(_)) | Err(_) => return,
                    }
                }
            }
            Verdict::Dead(why) => {
                abandon(shared, epoch_id, job, lease, why);
                return;
            }
        }
    }
}

struct RemoteSession<'s> {
    /// The transport-independent session half (tasks, checkpoints,
    /// quarantine ledger, epoch folding) — see [`crate::supervisor`].
    core: SessionCore<'s>,
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
    /// Self-spawned loopback worker daemons (empty with external
    /// workers). Never respawned: a dead remote worker's recovery story
    /// is lease expiry plus whatever redials — not coordinator forking.
    children: Vec<Child>,
    addr: SocketAddr,
    worker_wait: Duration,
    pool_start: Instant,
}

impl RemoteSession<'_> {
    /// Idempotent transport teardown: flag shutdown (connection threads
    /// forward `Shutdown` frames to their workers within a heartbeat),
    /// give self-spawned workers a grace window to exit cleanly, then
    /// kill the stragglers and join the acceptor.
    fn shutdown_transport(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        let deadline = Instant::now() + Duration::from_secs(3);
        while !self.children.is_empty() && Instant::now() < deadline {
            self.children.retain_mut(|child| !matches!(child.try_wait(), Ok(Some(_))));
            if self.children.is_empty() {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        for child in self.children.iter_mut() {
            kill_group(child);
        }
        self.children.clear();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for RemoteSession<'_> {
    fn drop(&mut self) {
        // Safety net for sessions abandoned mid-run (a failed epoch whose
        // error aborted the campaign): no worker processes or acceptor
        // threads may outlive the session.
        self.shutdown_transport();
    }
}

impl ShardSession for RemoteSession<'_> {
    fn run_epoch(
        &mut self,
        segments: &[usize],
        last: bool,
    ) -> Result<Vec<Vec<String>>, OrchestratorError> {
        debug_assert_eq!(segments.len(), self.core.tasks.len());
        let state = self.core.epoch_state();
        let jobs = (0..self.core.tasks.len())
            .map(|job| self.core.build_job(job, segments[job], last, 0))
            .collect();
        let telemetry = self.core.tasks.iter().map(|task| task.telemetry.clone()).collect();
        let epoch_id = {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.epoch_id += 1;
            slot.active = Some(ActiveEpoch { state, jobs, telemetry, pool_start: self.pool_start });
            slot.epoch_id
        };
        self.shared.cv.notify_all();
        // Wait (with a worker-starvation deadline) until the connection
        // threads settle the epoch.
        let mut starving_since = Instant::now();
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            debug_assert_eq!(slot.epoch_id, epoch_id);
            let epoch = slot.active.as_mut().expect("epoch installed above");
            if epoch.state.is_settled() {
                break;
            }
            if self.shared.workers_live.load(Ordering::SeqCst) > 0 {
                starving_since = Instant::now();
            } else if starving_since.elapsed() >= self.worker_wait {
                epoch.state.fail(EpochFailure {
                    message: format!(
                        "no workers connected to {} within {:.1}s",
                        self.addr,
                        self.worker_wait.as_secs_f64()
                    ),
                    worker_unavailable: true,
                });
                break;
            }
            // Short tick: doubles as the starvation clock's resolution
            // and a backstop against a missed notification.
            let (reacquired, _) =
                self.shared.cv.wait_timeout(slot, Duration::from_millis(50)).unwrap();
            slot = reacquired;
        }
        let state = slot.active.take().expect("epoch installed above").state;
        drop(slot);
        self.core.fold_epoch(state, last)
    }

    fn inject(&mut self, pools: &[&[String]]) -> Result<(), OrchestratorError> {
        self.core.inject(pools)
    }

    fn checkpoints(&mut self) -> Result<Vec<Option<RunnerCheckpoint>>, OrchestratorError> {
        self.core.checkpoints()
    }

    fn finish(mut self: Box<Self>) -> Result<SessionOutcome, OrchestratorError> {
        self.shutdown_transport();
        self.core.outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::NullSink;

    #[test]
    fn builder_knobs_are_validated_at_begin() {
        let executor = RemoteWorkerExecutor::new(0).max_dispatch_attempts(0);
        assert!(matches!(
            executor.begin(Vec::new(), &NullSink),
            Err(OrchestratorError::InvalidDispatchAttempts)
        ));
        let executor = RemoteWorkerExecutor::new(0).with_max_frame_len(0);
        assert!(matches!(
            executor.begin(Vec::new(), &NullSink),
            Err(OrchestratorError::InvalidFrameLen)
        ));
        assert_eq!(RemoteWorkerExecutor::new(0).name(), "remote");
        assert!(!RemoteWorkerExecutor::new(0).shares_cache());
        assert_eq!(RemoteWorkerExecutor::new(0).bound_addr(), None);
    }

    #[test]
    fn unbindable_listen_address_is_worker_unavailable() {
        // An unroutable bind target: the transport cannot exist, which is
        // exactly the degradation ladder's WorkerUnavailable class.
        let executor = RemoteWorkerExecutor::new(0).listen("256.256.256.256:0");
        match executor.begin(Vec::new(), &NullSink) {
            Err(OrchestratorError::WorkerUnavailable(msg)) => {
                assert!(msg.contains("cannot bind"), "{msg}");
            }
            other => panic!("expected WorkerUnavailable, got {:?}", other.err()),
        }
    }

    #[test]
    fn empty_session_settles_without_any_workers() {
        // Zero tasks settle instantly (remaining == 0), so no worker ever
        // needs to connect and finish() yields an empty outcome.
        let executor = RemoteWorkerExecutor::new(0).with_worker_wait(Duration::from_secs(30));
        let mut session = executor.begin(Vec::new(), &NullSink).unwrap();
        assert!(executor.bound_addr().is_some(), "begin records the bound address");
        let deltas = session.run_epoch(&[], true).unwrap();
        assert!(deltas.is_empty());
        let outcome = session.finish().unwrap();
        assert!(outcome.shards.is_empty());
    }
}
