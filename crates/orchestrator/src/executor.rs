//! The transport-agnostic shard execution layer.
//!
//! [`ShardExecutor`] is the seam between the orchestrator's *planning*
//! (shard decomposition, epoch barriers, delta merging, persistence) and
//! the *mechanics* of running shard segments somewhere. The coordinator
//! talks to every transport through the same session protocol:
//!
//! ```text
//!   Orchestrator / Scheduler          ShardExecutor::begin(tasks, sink)
//!            |                                      |
//!            |            Box<dyn ShardSession>     |
//!            +------------------+-------------------+
//!                               |
//!            per epoch:  run_epoch(segments, last) -> deltas
//!            at barrier: inject(pools), checkpoints()
//!            at the end: finish() -> Vec<ShardOutput>
//! ```
//!
//! Everything a transport needs to run one shard is a serializable
//! [`ShardTask`]; everything it produces is the serializable
//! [`crate::ShardOutput`] — the same contract the JSONL run directory
//! already persists, promoted to a wire contract. Three implementations
//! share all merge/barrier logic in the coordinator:
//!
//! * [`InProcessExecutor`] — shard runners on a worker-thread pool inside
//!   this process (the classic engine, bit-identical to the pre-executor
//!   code path);
//! * [`crate::ProcessPoolExecutor`] — `llm4fp-worker` daemon processes fed
//!   length-prefixed JSON jobs over stdin/stdout (see [`crate::wire`]),
//!   with per-shard timeouts, crash-and-redispatch and straggler
//!   re-dispatch at epoch barriers;
//! * [`crate::RemoteWorkerExecutor`] — the same worker binary dialing a
//!   TCP coordinator (`llm4fp-worker --connect`), supervised by leases,
//!   heartbeats and reconnect-and-resume (see [`crate::remote`]).
//!
//! Determinism is preserved across transports because a shard segment is
//! a pure function of `(config, spec, checkpoint, segment length)`:
//! whichever process computes it — and however many times a crash makes
//! it recompute — the bytes that reach the barrier are identical.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use llm4fp::{CampaignConfig, ProgramRecord, RunnerCheckpoint};
use llm4fp_difftest::{ProcessBudget, ResultCache};
use llm4fp_telemetry::{keys, Telemetry};

use crate::persist::PersistError;
use crate::pool::run_indexed;
use crate::shard::{ShardFailureReport, ShardOutput, ShardRunner, ShardSpec};

/// Errors from orchestrated execution.
#[derive(Debug)]
pub enum OrchestratorError {
    /// `workers == 0` was requested. Worker counts are validated at the
    /// API boundary instead of being silently clamped.
    InvalidWorkers,
    /// `max_dispatch_attempts == 0` was requested — a budget of zero
    /// would fail every job before its first dispatch. Validated at the
    /// API boundary like [`InvalidWorkers`](Self::InvalidWorkers).
    InvalidDispatchAttempts,
    /// `max_frame_len == 0` was requested — a zero cap would refuse
    /// every wire frame. Validated at the API boundary like
    /// [`InvalidWorkers`](Self::InvalidWorkers).
    InvalidFrameLen,
    /// The persistence layer failed (run-dir I/O, manifest mismatch,
    /// corrupt files).
    Persist(PersistError),
    /// The transport's workers cannot be spawned (or respawned) at all —
    /// the binary is missing or every spawn attempt failed. This class
    /// of failure is recoverable by *changing transports*: with
    /// [`fallback_to_in_process`](crate::OrchestratorOptions::fallback_to_in_process)
    /// the run restarts on [`InProcessExecutor`] with bit-identical
    /// results (the determinism contract is transport-independent).
    WorkerUnavailable(String),
    /// A shard executor failed in a way that cannot be retried away
    /// (a shard crashing repeatedly, a protocol violation on the wire).
    Executor(String),
}

impl fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestratorError::InvalidWorkers => {
                write!(f, "workers must be at least 1 (got 0)")
            }
            OrchestratorError::InvalidDispatchAttempts => {
                write!(f, "max_dispatch_attempts must be at least 1 (got 0)")
            }
            OrchestratorError::InvalidFrameLen => {
                write!(f, "max_frame_len must be at least 1 byte (got 0)")
            }
            OrchestratorError::Persist(e) => write!(f, "{e}"),
            OrchestratorError::WorkerUnavailable(msg) => {
                write!(f, "worker transport unavailable: {msg}")
            }
            OrchestratorError::Executor(msg) => write!(f, "shard executor failed: {msg}"),
        }
    }
}

impl std::error::Error for OrchestratorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrchestratorError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for OrchestratorError {
    fn from(e: PersistError) -> Self {
        OrchestratorError::Persist(e)
    }
}

/// What a supervising transport does when one shard exhausts its dispatch
/// budget (see
/// [`ProcessPoolExecutor::on_shard_failure`](crate::ProcessPoolExecutor::on_shard_failure)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Fail the whole run (the default). The only policy that preserves
    /// the determinism contract: either the full `(config, K, E)` result
    /// exists, or no result does.
    #[default]
    Abort,
    /// Quarantine the shard and complete the campaign on the survivors.
    /// The merged result then covers only the surviving shards' budgets —
    /// a deliberate trade of completeness for progress on hours-long
    /// unattended runs — and every quarantined shard is named in
    /// [`RunStats::failures`](crate::RunStats::failures) /
    /// `summary.json` with its attempt count and last error.
    Quarantine,
}

/// What a session produced for every task, in task order: the shard's
/// output, or (under [`FailurePolicy::Quarantine`]) the failure report
/// that quarantined it.
pub struct SessionOutcome {
    pub shards: Vec<Result<ShardOutput, ShardFailureReport>>,
}

impl SessionOutcome {
    /// Wrap an all-successful output list (transports without a
    /// quarantine policy).
    pub fn all_ok(outputs: Vec<ShardOutput>) -> Self {
        SessionOutcome { shards: outputs.into_iter().map(Ok).collect() }
    }
}

/// Everything one transport needs to run one shard: the campaign config,
/// the shard plan, and the run-level wiring (cache/budget handles for
/// in-process execution, the declarative `process_slots` knob for
/// transports that must rebuild a budget elsewhere, the shard's telemetry
/// lane, and an optional checkpoint to resume from).
#[derive(Clone)]
pub struct ShardTask {
    /// The parent campaign's configuration.
    pub config: CampaignConfig,
    /// The shard plan to execute.
    pub spec: ShardSpec,
    /// Shared differential-testing result cache (in-process transports
    /// only; out-of-process workers run uncached — the cache is
    /// semantically transparent, so results are unaffected).
    pub cache: Option<Arc<ResultCache>>,
    /// Shared external-process budget (in-process transports only).
    pub budget: Option<Arc<ProcessBudget>>,
    /// The process-slot count behind `budget`, for transports that must
    /// materialize their own budget in another process.
    pub process_slots: usize,
    /// This shard's telemetry lane. Out-of-process transports absorb the
    /// worker's exported counters into it at each barrier.
    pub telemetry: Telemetry,
    /// Resume from this barrier checkpoint instead of starting fresh.
    pub checkpoint: Option<RunnerCheckpoint>,
}

/// Observes shard progress as it happens: one call per processed program
/// and one per completed shard. The orchestrator's sink streams records
/// into the JSONL run directory; the scheduler's sink keeps per-campaign
/// wall clocks. `task` is the index into the `tasks` slice passed to
/// [`ShardExecutor::begin`].
pub trait RecordSink: Sync {
    /// One program was processed by task `task`.
    fn record(&self, task: usize, record: &ProgramRecord);
    /// Task `task` ran its full budget; `output` is its final summary.
    fn complete(&self, task: usize, output: &ShardOutput);
}

/// A sink that observes nothing (memory-only runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl RecordSink for NullSink {
    fn record(&self, _task: usize, _record: &ProgramRecord) {}
    fn complete(&self, _task: usize, _output: &ShardOutput) {}
}

/// A transport for running shard tasks. Implementations are cheap,
/// reusable handles; all per-run state lives in the [`ShardSession`]
/// returned by [`ShardExecutor::begin`].
pub trait ShardExecutor: Send + Sync + fmt::Debug {
    /// Short stable name for logs and CLIs (`"in-process"`,
    /// `"process-pool"`).
    fn name(&self) -> &'static str;

    /// Whether the shared [`ShardTask::cache`] handles are actually
    /// consulted by this transport. Out-of-process executors return
    /// `false`: their workers run uncached, so coordinator-side cache
    /// statistics would be meaningless.
    fn shares_cache(&self) -> bool {
        true
    }

    /// Start a session over `tasks`. Progress streams into `sink` as it
    /// happens (subject to the transport's delivery granularity: an
    /// out-of-process executor replays records at epoch barriers).
    fn begin<'s>(
        &self,
        tasks: Vec<ShardTask>,
        sink: &'s dyn RecordSink,
    ) -> Result<Box<dyn ShardSession + 's>, OrchestratorError>;
}

/// One run's worth of live shard state behind a [`ShardExecutor`]. The
/// coordinator drives the same barrier protocol against every transport:
/// `run_epoch` for each epoch (with `last = true` on the final one),
/// `inject`/`checkpoints` between epochs, `finish` at the end.
pub trait ShardSession {
    /// Run `segments[i]` programs of task `i` (zero-length segments are
    /// legal no-ops) and return each task's *delta* — the successful
    /// sources it newly found this epoch, in task order. With `last` the
    /// tasks also finish: their outputs become available to [`finish`]
    /// and `sink.complete` fires per task.
    ///
    /// [`finish`]: ShardSession::finish
    fn run_epoch(
        &mut self,
        segments: &[usize],
        last: bool,
    ) -> Result<Vec<Vec<String>>, OrchestratorError>;

    /// Broadcast merged exchange pools into the paused tasks
    /// (`pools[i]` into task `i`). Injection is a pure set-merge — see
    /// `llm4fp::RunnerCheckpoint::inject_successful` — so transports may
    /// apply it to a live runner or to a stored checkpoint
    /// interchangeably.
    fn inject(&mut self, pools: &[&[String]]) -> Result<(), OrchestratorError>;

    /// Snapshot every paused task for barrier persistence. Call after
    /// [`inject`](ShardSession::inject), mirroring the runner-side
    /// checkpoint-after-injection order. `None` for a quarantined task
    /// (it has no live state to persist); a task that simply never ran is
    /// still an error.
    fn checkpoints(&mut self) -> Result<Vec<Option<RunnerCheckpoint>>, OrchestratorError>;

    /// Collect every task's outcome, in task order: its output, or — for
    /// transports with a [`FailurePolicy::Quarantine`] policy — the
    /// failure report explaining why it has none. Only valid after
    /// `run_epoch(.., last = true)` ran.
    fn finish(self: Box<Self>) -> Result<SessionOutcome, OrchestratorError>;
}

/// The in-process transport: shard runners on a worker-thread pool in
/// this process, sharing the result cache and process budget directly.
/// This is the refactored classic engine — outputs are bit-identical to
/// the pre-executor code path (pinned by `tests/invariants.rs`).
#[derive(Debug, Clone)]
pub struct InProcessExecutor {
    workers: usize,
}

impl InProcessExecutor {
    /// An executor running tasks on up to `workers` threads (clamped to
    /// at least 1; the orchestrator builder rejects `workers == 0` with
    /// [`OrchestratorError::InvalidWorkers`] before constructing one).
    pub fn new(workers: usize) -> Self {
        InProcessExecutor { workers: workers.max(1) }
    }
}

impl ShardExecutor for InProcessExecutor {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn begin<'s>(
        &self,
        tasks: Vec<ShardTask>,
        sink: &'s dyn RecordSink,
    ) -> Result<Box<dyn ShardSession + 's>, OrchestratorError> {
        let slots = tasks.iter().map(|_| Mutex::new(None)).collect();
        let outputs = tasks.iter().map(|_| Mutex::new(None)).collect();
        Ok(Box::new(InProcessSession {
            workers: self.workers,
            tasks,
            sink,
            slots,
            outputs,
            pool_start: Instant::now(),
        }))
    }
}

/// Build the live runner for one task (first time its segment runs).
/// Construction happens lazily inside the pool so its cost parallelizes
/// with the rest of the shard's work.
fn build_runner(task: &ShardTask) -> ShardRunner {
    let mut runner = match task.checkpoint.clone() {
        Some(checkpoint) => {
            ShardRunner::from_checkpoint(&task.config, task.spec, task.cache.clone(), checkpoint)
        }
        None => ShardRunner::new(&task.config, task.spec, task.cache.clone()),
    };
    if let Some(budget) = &task.budget {
        runner = runner.with_process_budget(Arc::clone(budget));
    }
    runner.with_telemetry(task.telemetry.clone())
}

struct InProcessSession<'s> {
    workers: usize,
    tasks: Vec<ShardTask>,
    sink: &'s dyn RecordSink,
    /// Lazily constructed runners; `None` before the first segment and
    /// after the finishing one.
    slots: Vec<Mutex<Option<ShardRunner>>>,
    outputs: Vec<Mutex<Option<ShardOutput>>>,
    pool_start: Instant,
}

impl ShardSession for InProcessSession<'_> {
    fn run_epoch(
        &mut self,
        segments: &[usize],
        last: bool,
    ) -> Result<Vec<Vec<String>>, OrchestratorError> {
        debug_assert_eq!(segments.len(), self.tasks.len());
        let deltas = run_indexed(self.tasks.len(), self.workers, |task| {
            let telemetry = &self.tasks[task].telemetry;
            telemetry.observe(keys::QUEUE_WAIT, self.pool_start.elapsed());
            let _span = telemetry.span(keys::SPAN_SHARD_RUN);
            let mut slot = self.slots[task].lock().unwrap();
            let runner = slot.get_or_insert_with(|| build_runner(&self.tasks[task]));
            let delta = runner.run_segment(segments[task], |record| self.sink.record(task, record));
            if last {
                let output = slot.take().expect("runner present").finish();
                self.sink.complete(task, &output);
                *self.outputs[task].lock().unwrap() = Some(output);
            }
            delta
        });
        Ok(deltas)
    }

    fn inject(&mut self, pools: &[&[String]]) -> Result<(), OrchestratorError> {
        debug_assert_eq!(pools.len(), self.slots.len());
        for (slot, pool) in self.slots.iter().zip(pools) {
            if let Some(runner) = slot.lock().unwrap().as_mut() {
                runner.inject(pool);
            }
        }
        Ok(())
    }

    fn checkpoints(&mut self) -> Result<Vec<Option<RunnerCheckpoint>>, OrchestratorError> {
        // In-process tasks are never quarantined, so every slot must hold
        // a live runner here.
        self.slots
            .iter()
            .map(|slot| {
                slot.lock().unwrap().as_ref().map(|runner| Some(runner.checkpoint())).ok_or_else(
                    || {
                        OrchestratorError::Executor(
                            "checkpoint requested for a task that never ran".into(),
                        )
                    },
                )
            })
            .collect()
    }

    fn finish(self: Box<Self>) -> Result<SessionOutcome, OrchestratorError> {
        let outputs = self
            .outputs
            .into_iter()
            .map(|slot| {
                slot.into_inner().unwrap().ok_or_else(|| {
                    OrchestratorError::Executor("finish called before the final epoch ran".into())
                })
            })
            .collect::<Result<Vec<ShardOutput>, OrchestratorError>>()?;
        Ok(SessionOutcome::all_ok(outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{plan_epoch_segments, plan_shards, run_shard, ShardCtx};
    use llm4fp::ApproachKind;

    fn config(budget: usize, seed: u64) -> CampaignConfig {
        CampaignConfig::new(ApproachKind::Llm4Fp)
            .with_budget(budget)
            .with_seed(seed)
            .with_threads(1)
    }

    fn tasks_for(config: &CampaignConfig, shards: usize) -> Vec<ShardTask> {
        plan_shards(config, shards)
            .into_iter()
            .map(|spec| ShardTask {
                config: config.clone(),
                spec,
                cache: None,
                budget: None,
                process_slots: 1,
                telemetry: Telemetry::disabled(),
                checkpoint: None,
            })
            .collect()
    }

    #[test]
    fn a_single_epoch_session_reproduces_run_shard() {
        let config = config(12, 5);
        let specs = plan_shards(&config, 3);
        let executor = InProcessExecutor::new(2);
        let mut session = executor.begin(tasks_for(&config, 3), &NullSink).unwrap();
        let budgets: Vec<usize> = specs.iter().map(|s| s.budget).collect();
        session.run_epoch(&budgets, true).unwrap();
        let outputs: Vec<ShardOutput> = session
            .finish()
            .unwrap()
            .shards
            .into_iter()
            .map(|shard| shard.expect("in-process tasks never quarantine"))
            .collect();
        for (spec, output) in specs.iter().zip(&outputs) {
            let direct = run_shard(spec, &ShardCtx::new(&config));
            assert_eq!(output.records, direct.records);
            assert_eq!(output.successful_sources, direct.successful_sources);
        }
    }

    #[test]
    fn epoch_segments_with_injection_match_a_manual_runner() {
        let config = config(16, 9);
        let spec = plan_shards(&config, 1)[0];
        let segments = plan_epoch_segments(spec.budget, 2);

        let executor = InProcessExecutor::new(1);
        let mut session = executor
            .begin(
                vec![ShardTask {
                    config: config.clone(),
                    spec,
                    cache: None,
                    budget: None,
                    process_slots: 1,
                    telemetry: Telemetry::disabled(),
                    checkpoint: None,
                }],
                &NullSink,
            )
            .unwrap();
        let deltas = session.run_epoch(&segments[..1], false).unwrap();
        let pool = deltas[0].clone();
        session.inject(&[&pool]).unwrap();
        let checkpoints: Vec<_> = session
            .checkpoints()
            .unwrap()
            .into_iter()
            .map(|c| c.expect("live task has a checkpoint"))
            .collect();
        session.run_epoch(&[segments[1]], true).unwrap();
        let output =
            session.finish().unwrap().shards.remove(0).expect("in-process tasks never quarantine");

        let mut manual = ShardRunner::new(&config, spec, None);
        let manual_delta = manual.run_segment(segments[0], |_| {});
        assert_eq!(manual_delta, pool);
        manual.inject(&pool);
        let mut manual_checkpoint = manual.checkpoint();
        // Wall clocks never replay; everything else must.
        manual_checkpoint.pipeline_time = checkpoints[0].pipeline_time;
        assert_eq!(checkpoints[0], manual_checkpoint);
        manual.run_segment(segments[1], |_| {});
        let manual_output = manual.finish();
        assert_eq!(output.records, manual_output.records);
        assert_eq!(output.successful_sources, manual_output.successful_sources);
        assert_eq!(output.aggregates, manual_output.aggregates);
    }

    #[test]
    fn errors_render_and_convert() {
        assert!(OrchestratorError::InvalidWorkers.to_string().contains("at least 1"));
        assert!(OrchestratorError::InvalidDispatchAttempts.to_string().contains("at least 1"));
        assert!(OrchestratorError::InvalidFrameLen.to_string().contains("max_frame_len"));
        assert!(OrchestratorError::Executor("boom".into()).to_string().contains("boom"));
        assert!(OrchestratorError::WorkerUnavailable("no binary".into())
            .to_string()
            .contains("no binary"));
        let persist: OrchestratorError =
            PersistError::corrupt(crate::persist::Artifact::Manifest, "bad manifest").into();
        assert!(persist.to_string().contains("bad manifest"));
        assert!(persist.to_string().contains("manifest"));
    }
}
