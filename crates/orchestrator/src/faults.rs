//! Deterministic fault injection for chaos-testing the orchestrator.
//!
//! A [`FaultPlan`] is a serializable description of *where the next run
//! should break*: worker crashes at a numbered job, stalls, corrupt or
//! truncated wire frames, coordinator-side respawn failures, simulated
//! external-compiler spawn errors, and torn run-dir writes. The plan is
//! threaded through the whole stack —
//!
//! * the coordinator ([`crate::ProcessPoolExecutor::with_fault_plan`])
//!   ships each spawn's effective worker faults to the daemon as JSON in
//!   the [`FAULT_PLAN_ENV`] environment variable and injects respawn
//!   failures into its own spawn path;
//! * the `llm4fp-worker` daemon applies them via [`WorkerFaultHarness`];
//! * the persistence layer ([`crate::Orchestrator::persist_faults`])
//!   applies [`PersistFault`]s to run-dir writes.
//!
//! This replaces the earlier ad-hoc `LLM4FP_WORKER_CRASH_AT_JOB` /
//! `LLM4FP_WORKER_STALL_MS` environment variables with one declarative,
//! serializable failpoint vocabulary — the same plan file drives the unit
//! suite, the integration chaos tests, and the CI chaos matrix.
//!
//! **Zero-cost when empty**, matching the telemetry discipline: every
//! injection site is a single branch on an empty plan (the coordinator
//! doesn't even set the env var), so production runs pay nothing.
//!
//! Because every fault is keyed deterministically (job ordinals, shard
//! indices, artifact names — never wall clock or randomness), a chaos run
//! is reproducible, and the supervisor's recovery keeps Abort-mode results
//! bit-identical to the fault-free run — the property the CI `chaos` job
//! pins with `cmp`.

use std::time::Duration;

use serde::{Deserialize, Error, Serialize, Value};

/// Environment variable carrying a JSON [`WorkerFaultSet`] to a worker
/// daemon (set by the coordinator per spawn; absent = no faults). For
/// backward compatibility a bare JSON `Vec<WorkerFault>` still parses.
pub const FAULT_PLAN_ENV: &str = "LLM4FP_FAULT_PLAN";

/// Exit code a worker uses for an injected crash.
pub const EXIT_CRASH: i32 = 101;
/// Exit code a worker uses for a simulated external-compiler spawn error.
pub const EXIT_EXTCC_SPAWN: i32 = 102;
/// Exit code a worker uses after deliberately sabotaging an answer frame
/// (the stream is unusable afterwards, so the daemon does not linger).
pub const EXIT_SABOTAGED_ANSWER: i32 = 103;
/// Exit code a *pipe-mode* worker uses for an injected connection drop
/// (over pipes, dropping the connection and dying are the same thing; a
/// socket-mode worker closes the stream and reconnects instead).
pub const EXIT_DROPPED_CONN: i32 = 104;

/// One injected worker-daemon failure. Job ordinals count the jobs *this
/// daemon process* received, starting at 1 — a respawned daemon starts
/// counting afresh, which is what lets a `first_worker` fault heal on
/// redispatch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerFault {
    /// Exit with [`EXIT_CRASH`] upon receiving the n-th job, before
    /// answering (a mid-epoch crash).
    CrashAtJob(u64),
    /// Exit with [`EXIT_CRASH`] whenever a job for this shard index
    /// arrives — a deterministically poisonous shard (the quarantine
    /// policy's reason to exist: under `every_worker` this fault survives
    /// respawns and exhausts the dispatch budget).
    CrashOnShard(usize),
    /// Sleep this long before every answer (a straggler/hang for the
    /// shard-timeout kill path).
    StallMs(u64),
    /// Answer the n-th job with garbage bytes instead of a frame (the
    /// coordinator sees a malformed-frame error, not a clean result).
    CorruptFrameAtJob(u64),
    /// Answer the n-th job with a frame header promising more bytes than
    /// are sent, then exit (the coordinator sees a mid-frame EOF).
    TruncateFrameAtJob(u64),
    /// Exit with [`EXIT_EXTCC_SPAWN`] upon receiving a job whose campaign
    /// uses an external backend (simulates the external toolchain
    /// disappearing out from under a worker).
    ExtccSpawnError,
}

/// One injected *network* failure for the socket transport. Worker-side
/// variants ship (like [`WorkerFault`]s) to the **first worker
/// connection's process** only, so a chaos run breaks in exactly one
/// deterministic place and the supervisor's recovery — lease expiry,
/// reconnect-and-resume, stale-result discard — must heal it without
/// changing a single result bit. `RefuseHandshake` is coordinator-side:
/// the acceptor refuses the first handshake it sees, and the refused
/// worker's dial-retry gets accepted afterwards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkFault {
    /// Close the connection upon receiving the n-th job, *before*
    /// answering (a mid-epoch partition; the worker process survives and
    /// reconnects).
    DropConnAtJob(u64),
    /// Sleep this long before every answer frame (network latency; long
    /// enough delays expire the lease and exercise the stale-result
    /// discard).
    DelayFrameMs(u64),
    /// Answer the n-th job twice — two byte-identical result frames
    /// (a retransmission; the second copy must be discarded as stale).
    DuplicateResultAtJob(u64),
    /// Answer the n-th job with a frame header promising more bytes
    /// than are sent, then close the connection (a stream torn
    /// mid-frame; the coordinator sees a malformed frame / EOF).
    TruncateStreamAtJob(u64),
    /// The coordinator refuses the first incoming handshake with a
    /// typed [`crate::wire::WireRequest::Refuse`]; the worker must
    /// retry its dial and be accepted on the next attempt.
    RefuseHandshake,
}

/// One injected persistence failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PersistFault {
    /// The first run-dir artifact whose file name contains this substring
    /// is written torn: only the first half of its bytes land, bypassing
    /// the temp-file+rename protocol. Fires once per run. The write is
    /// counted as a persist error and the run continues — artifact writes
    /// are best-effort, so Abort-mode results stay bit-identical and the
    /// damaged file exercises the resume-side tolerance instead.
    TornWrite(String),
}

/// A deterministic, serializable chaos schedule for one run.
///
/// All fields default to empty/zero, and a JSON plan may omit any of
/// them: `{"first_worker": [{"CrashAtJob": 1}]}` is a complete plan.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct FaultPlan {
    /// Faults applied to worker slot 0's *first* spawn only. Respawns
    /// never re-apply them, so recovery heals the fault — the shape every
    /// redispatch-equivalence test uses.
    pub first_worker: Vec<WorkerFault>,
    /// Faults applied to *every* worker spawn — persistent poison that
    /// survives respawns and exhausts the dispatch budget (the quarantine
    /// and abort policies' test shape).
    pub every_worker: Vec<WorkerFault>,
    /// The first N worker spawn attempts fail coordinator-side (as if
    /// fork/exec itself failed), exercising the deterministic respawn
    /// backoff and the `WorkerUnavailable` degradation path.
    pub respawn_failures: u32,
    /// Persistence-layer faults (see [`PersistFault`]).
    pub persist: Vec<PersistFault>,
    /// Network faults for the socket transport (see [`NetworkFault`]).
    /// Worker-side variants apply to the first worker process only;
    /// `RefuseHandshake` arms the coordinator's acceptor.
    pub network: Vec<NetworkFault>,
}

/// Missing fields deserialize as their defaults so partial JSON plan
/// files stay valid (the vendored serde shim has no `#[serde(default)]`).
impl Deserialize for FaultPlan {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_obj().ok_or_else(|| Error::msg("expected object for FaultPlan"))?;
        fn field<T: Deserialize + Default>(m: &serde::Map, name: &str) -> Result<T, Error> {
            match m.get(name) {
                None | Some(Value::Null) => Ok(T::default()),
                Some(v) => T::from_value(v),
            }
        }
        Ok(FaultPlan {
            first_worker: field(m, "first_worker")?,
            every_worker: field(m, "every_worker")?,
            respawn_failures: field(m, "respawn_failures")?,
            persist: field(m, "persist")?,
            network: field(m, "network")?,
        })
    }
}

impl FaultPlan {
    /// The empty plan (every injection site reduces to one branch).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.first_worker.is_empty()
            && self.every_worker.is_empty()
            && self.respawn_failures == 0
            && self.persist.is_empty()
            && self.network.is_empty()
    }

    /// The effective fault set for one worker spawn: `every_worker`
    /// always, plus `first_worker` on slot 0's first spawn.
    pub fn worker_faults(&self, first_spawn_of_slot0: bool) -> Vec<WorkerFault> {
        let mut faults = Vec::new();
        if first_spawn_of_slot0 {
            faults.extend(self.first_worker.iter().cloned());
        }
        faults.extend(self.every_worker.iter().cloned());
        faults
    }

    /// The worker-side network faults for one worker spawn: everything
    /// but [`NetworkFault::RefuseHandshake`] (which the coordinator's
    /// acceptor applies), on the first spawn only — one deterministic
    /// breakage site, like `first_worker`.
    pub fn network_faults(&self, first_spawn_of_slot0: bool) -> Vec<NetworkFault> {
        if !first_spawn_of_slot0 {
            return Vec::new();
        }
        self.network
            .iter()
            .filter(|fault| !matches!(fault, NetworkFault::RefuseHandshake))
            .cloned()
            .collect()
    }

    /// How many incoming handshakes the coordinator's acceptor should
    /// refuse (one per [`NetworkFault::RefuseHandshake`] in the plan).
    pub fn refuse_handshakes(&self) -> u32 {
        self.network.iter().filter(|f| matches!(f, NetworkFault::RefuseHandshake)).count() as u32
    }

    /// The [`FAULT_PLAN_ENV`] value for one worker spawn, or `None` when
    /// the spawn has no faults (the variable is then not set at all — the
    /// zero-cost path).
    pub fn worker_env(&self, first_spawn_of_slot0: bool) -> Option<String> {
        let set = WorkerFaultSet {
            worker: self.worker_faults(first_spawn_of_slot0),
            network: self.network_faults(first_spawn_of_slot0),
        };
        if set.worker.is_empty() && set.network.is_empty() {
            return None;
        }
        Some(serde_json::to_string(&set).expect("worker faults always serialize"))
    }
}

/// The per-spawn fault payload shipped to a worker via
/// [`FAULT_PLAN_ENV`]: the process faults plus the worker-side network
/// faults. (The worker also accepts a bare `Vec<WorkerFault>`, the
/// pre-network payload shape.)
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct WorkerFaultSet {
    /// Process-level faults (crash, stall, frame sabotage).
    pub worker: Vec<WorkerFault>,
    /// Worker-side network faults (drop, delay, duplicate, truncate).
    pub network: Vec<NetworkFault>,
}

/// Missing fields deserialize as their defaults, like [`FaultPlan`].
impl Deserialize for WorkerFaultSet {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_obj().ok_or_else(|| Error::msg("expected object for WorkerFaultSet"))?;
        fn field<T: Deserialize + Default>(m: &serde::Map, name: &str) -> Result<T, Error> {
            match m.get(name) {
                None | Some(Value::Null) => Ok(T::default()),
                Some(v) => T::from_value(v),
            }
        }
        Ok(WorkerFaultSet { worker: field(m, "worker")?, network: field(m, "network")? })
    }
}

/// What [`WorkerFaultHarness::on_job`] tells the daemon to do to the
/// current job. `exit_code` wins over everything; `drop_conn` wins over
/// answering; `stall` applies before computing; `delay` applies before
/// writing; `answer` replaces the result frame; `duplicate` and
/// `truncate_stream` sabotage how (many times) it is written.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JobSabotage {
    /// Exit with this code instead of answering.
    pub exit_code: Option<i32>,
    /// Sleep this long before answering.
    pub stall: Option<Duration>,
    /// Sabotage the answer frame instead of writing it properly.
    pub answer: Option<FrameSabotage>,
    /// Close the connection without answering ([`NetworkFault::
    /// DropConnAtJob`]); over pipes this exits with
    /// [`EXIT_DROPPED_CONN`], over sockets the process reconnects.
    pub drop_conn: bool,
    /// Sleep this long *after* computing, before writing the answer
    /// frame ([`NetworkFault::DelayFrameMs`]).
    pub delay: Option<Duration>,
    /// Write the answer frame twice ([`NetworkFault::DuplicateResultAtJob`]).
    pub duplicate: bool,
    /// Write half the answer frame, then close the connection
    /// ([`NetworkFault::TruncateStreamAtJob`]).
    pub truncate_stream: bool,
}

/// How a worker sabotages one answer frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameSabotage {
    /// Write garbage bytes that parse as no frame header.
    Corrupt,
    /// Write a valid header promising more payload than is sent.
    Truncate,
}

/// The worker daemon's side of the fault plan: parses [`FAULT_PLAN_ENV`]
/// once at startup and answers, per received job, what (if anything) to
/// sabotage. Counts jobs from 1 in arrival order — across reconnects,
/// since the process (not the connection) owns the count, which is what
/// makes "drop at job 1, then heal" deterministic.
#[derive(Debug, Default)]
pub struct WorkerFaultHarness {
    faults: Vec<WorkerFault>,
    network: Vec<NetworkFault>,
    handled: u64,
}

impl WorkerFaultHarness {
    /// Parse the harness from [`FAULT_PLAN_ENV`]. Absent or unparseable
    /// values yield the empty harness (a worker must never die because a
    /// fault plan was malformed — that would fault the *coordinator's*
    /// contract, not the planned failpoint).
    pub fn from_env() -> Self {
        let Ok(text) = std::env::var(FAULT_PLAN_ENV) else {
            return WorkerFaultHarness::default();
        };
        if let Ok(set) = serde_json::from_str::<WorkerFaultSet>(&text) {
            return WorkerFaultHarness { faults: set.worker, network: set.network, handled: 0 };
        }
        // Pre-network payload shape: a bare worker-fault list.
        let faults = serde_json::from_str(&text).unwrap_or_default();
        WorkerFaultHarness { faults, network: Vec::new(), handled: 0 }
    }

    /// A harness over an explicit fault list (tests).
    pub fn new(faults: Vec<WorkerFault>) -> Self {
        WorkerFaultHarness { faults, network: Vec::new(), handled: 0 }
    }

    /// A harness over worker and network fault lists (tests).
    pub fn with_network(faults: Vec<WorkerFault>, network: Vec<NetworkFault>) -> Self {
        WorkerFaultHarness { faults, network, handled: 0 }
    }

    /// Whether any faults are armed (the daemon's single branch per job).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.network.is_empty()
    }

    /// Record the arrival of a job for `shard` (with `external` saying
    /// whether its campaign uses an external backend) and return the
    /// sabotage to apply.
    pub fn on_job(&mut self, shard: usize, external: bool) -> JobSabotage {
        self.handled += 1;
        let mut sabotage = JobSabotage::default();
        for fault in &self.faults {
            match *fault {
                WorkerFault::CrashAtJob(n) if n == self.handled => {
                    sabotage.exit_code = Some(EXIT_CRASH);
                }
                WorkerFault::CrashOnShard(index) if index == shard => {
                    sabotage.exit_code = Some(EXIT_CRASH);
                }
                WorkerFault::ExtccSpawnError if external => {
                    sabotage.exit_code = Some(EXIT_EXTCC_SPAWN);
                }
                WorkerFault::StallMs(ms) => {
                    sabotage.stall = Some(Duration::from_millis(ms));
                }
                WorkerFault::CorruptFrameAtJob(n) if n == self.handled => {
                    sabotage.answer = Some(FrameSabotage::Corrupt);
                }
                WorkerFault::TruncateFrameAtJob(n) if n == self.handled => {
                    sabotage.answer = Some(FrameSabotage::Truncate);
                }
                _ => {}
            }
        }
        for fault in &self.network {
            match *fault {
                NetworkFault::DropConnAtJob(n) if n == self.handled => {
                    sabotage.drop_conn = true;
                }
                NetworkFault::DelayFrameMs(ms) => {
                    sabotage.delay = Some(Duration::from_millis(ms));
                }
                NetworkFault::DuplicateResultAtJob(n) if n == self.handled => {
                    sabotage.duplicate = true;
                }
                NetworkFault::TruncateStreamAtJob(n) if n == self.handled => {
                    sabotage.truncate_stream = true;
                }
                // Coordinator-side; never ships to a worker.
                NetworkFault::RefuseHandshake => {}
                _ => {}
            }
        }
        sabotage
    }
}

/// The respawn backoff's documented saturation point: the delay doubles
/// at most this many times, capping at `2^MAX_BACKOFF_DOUBLINGS * base`
/// (64x). The cap exists for two reasons: a worker slot that has failed
/// this often is waiting on an operator, not on more patience, and an
/// unclamped `base << failures` would be a shift overflow once the
/// failure count (bounded only by the dispatch budget times epochs, not
/// by 32) reaches the width of the type.
pub const MAX_BACKOFF_DOUBLINGS: u32 = 6;

/// Deterministic exponential backoff before the `failures`-th consecutive
/// respawn attempt of worker slot `slot` (`failures >= 1`): doubles from
/// `base` up to [`MAX_BACKOFF_DOUBLINGS`] times (64x), plus a
/// seed-derived jitter in `[0, base)` so slots retrying in lockstep fan
/// out — without any wall-clock or RNG dependence, keeping chaos runs
/// reproducible. Saturates (never shift-overflows) for any `failures`
/// up to `u32::MAX`.
pub fn respawn_backoff(seed: u64, slot: usize, failures: u32, base: Duration) -> Duration {
    let exponent = failures.saturating_sub(1).min(MAX_BACKOFF_DOUBLINGS);
    // The clamp above keeps the shift in range for any conceivable cap;
    // `checked_shl` documents that even a misconfigured cap saturates
    // instead of overflowing.
    let factor = 1u32.checked_shl(exponent).unwrap_or(u32::MAX);
    let jitter_unit =
        splitmix(seed ^ (slot as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ failures as u64);
    let base_nanos = base.as_nanos() as u64;
    let jitter = if base_nanos == 0 { 0 } else { jitter_unit % base_nanos };
    base.saturating_mul(factor) + Duration::from_nanos(jitter)
}

/// SplitMix64 finalizer — the same style of golden-ratio mixing the shard
/// seeds use, good enough to decorrelate backoff jitter across slots.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_round_trip_and_partial_json_defaults() {
        let plan = FaultPlan {
            first_worker: vec![WorkerFault::CrashAtJob(1), WorkerFault::StallMs(250)],
            every_worker: vec![WorkerFault::CrashOnShard(2), WorkerFault::ExtccSpawnError],
            respawn_failures: 3,
            persist: vec![PersistFault::TornWrite("checkpoint".into())],
            network: vec![
                NetworkFault::DropConnAtJob(1),
                NetworkFault::DelayFrameMs(40),
                NetworkFault::DuplicateResultAtJob(2),
                NetworkFault::TruncateStreamAtJob(3),
                NetworkFault::RefuseHandshake,
            ],
        };
        let text = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(back, plan);
        // Partial plans parse with defaults for everything omitted.
        let partial: FaultPlan =
            serde_json::from_str(r#"{"first_worker": [{"CrashAtJob": 1}]}"#).unwrap();
        assert_eq!(partial.first_worker, vec![WorkerFault::CrashAtJob(1)]);
        assert!(partial.every_worker.is_empty());
        assert_eq!(partial.respawn_failures, 0);
        assert!(partial.persist.is_empty());
        assert!(partial.network.is_empty());
        let net_only: FaultPlan =
            serde_json::from_str(r#"{"network": [{"DropConnAtJob": 1}, "RefuseHandshake"]}"#)
                .unwrap();
        assert_eq!(
            net_only.network,
            vec![NetworkFault::DropConnAtJob(1), NetworkFault::RefuseHandshake]
        );
        assert!(!net_only.is_empty());
        assert_eq!(net_only.refuse_handshakes(), 1);
        let empty: FaultPlan = serde_json::from_str("{}").unwrap();
        assert!(empty.is_empty());
        assert!(FaultPlan::none().is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn worker_env_applies_first_worker_to_slot0_first_spawn_only() {
        let plan =
            FaultPlan { first_worker: vec![WorkerFault::CrashAtJob(1)], ..FaultPlan::default() };
        let first = plan.worker_env(true).expect("slot 0 first spawn is faulted");
        let parsed: WorkerFaultSet = serde_json::from_str(&first).unwrap();
        assert_eq!(parsed.worker, vec![WorkerFault::CrashAtJob(1)]);
        assert!(parsed.network.is_empty());
        // Respawns (and other slots) see no faults at all — the variable
        // is not even set, so the worker's branch stays zero-cost.
        assert_eq!(plan.worker_env(false), None);
        let poison =
            FaultPlan { every_worker: vec![WorkerFault::CrashOnShard(1)], ..FaultPlan::default() };
        assert!(poison.worker_env(false).is_some());
    }

    #[test]
    fn network_faults_ship_to_the_first_worker_without_refuse() {
        let plan = FaultPlan {
            network: vec![NetworkFault::DropConnAtJob(2), NetworkFault::RefuseHandshake],
            ..FaultPlan::default()
        };
        // RefuseHandshake stays coordinator-side; the drop ships to the
        // first worker only.
        assert_eq!(plan.network_faults(true), vec![NetworkFault::DropConnAtJob(2)]);
        assert!(plan.network_faults(false).is_empty());
        assert_eq!(plan.refuse_handshakes(), 1);
        let env = plan.worker_env(true).expect("network faults set the env");
        let parsed: WorkerFaultSet = serde_json::from_str(&env).unwrap();
        assert_eq!(parsed.network, vec![NetworkFault::DropConnAtJob(2)]);
        assert!(parsed.worker.is_empty());
        // A refuse-only plan ships nothing to workers at all.
        let refuse_only =
            FaultPlan { network: vec![NetworkFault::RefuseHandshake], ..FaultPlan::default() };
        assert_eq!(refuse_only.worker_env(true), None);
    }

    #[test]
    fn harness_applies_network_sabotage_and_legacy_payloads() {
        let mut h = WorkerFaultHarness::with_network(
            Vec::new(),
            vec![
                NetworkFault::DropConnAtJob(1),
                NetworkFault::DelayFrameMs(30),
                NetworkFault::DuplicateResultAtJob(2),
                NetworkFault::TruncateStreamAtJob(3),
                NetworkFault::RefuseHandshake,
            ],
        );
        assert!(!h.is_empty());
        let first = h.on_job(0, false);
        assert!(first.drop_conn);
        assert_eq!(first.delay, Some(Duration::from_millis(30)));
        assert!(!first.duplicate && !first.truncate_stream);
        let second = h.on_job(0, false);
        assert!(!second.drop_conn && second.duplicate);
        assert_eq!(second.delay, Some(Duration::from_millis(30)));
        let third = h.on_job(0, false);
        assert!(third.truncate_stream && !third.duplicate);
        // The legacy bare-list payload still parses (round-trip through
        // the set shape is covered by worker_env tests above).
        let legacy: WorkerFaultSet =
            serde_json::from_str(r#"{"worker": [{"CrashAtJob": 1}], "network": []}"#).unwrap();
        assert_eq!(legacy.worker, vec![WorkerFault::CrashAtJob(1)]);
    }

    #[test]
    fn harness_fires_on_the_planned_job_and_shard() {
        let mut h = WorkerFaultHarness::new(vec![
            WorkerFault::CrashAtJob(2),
            WorkerFault::CrashOnShard(7),
            WorkerFault::StallMs(10),
        ]);
        let first = h.on_job(0, false);
        assert_eq!(first.exit_code, None);
        assert_eq!(first.stall, Some(Duration::from_millis(10)));
        // Job 2 crashes; shard 7 would too, on any job number.
        assert_eq!(h.on_job(0, false).exit_code, Some(EXIT_CRASH));
        assert_eq!(h.on_job(7, false).exit_code, Some(EXIT_CRASH));

        let mut ext = WorkerFaultHarness::new(vec![WorkerFault::ExtccSpawnError]);
        assert_eq!(ext.on_job(0, false).exit_code, None);
        assert_eq!(ext.on_job(0, true).exit_code, Some(EXIT_EXTCC_SPAWN));

        let mut frames = WorkerFaultHarness::new(vec![
            WorkerFault::CorruptFrameAtJob(1),
            WorkerFault::TruncateFrameAtJob(2),
        ]);
        assert_eq!(frames.on_job(0, false).answer, Some(FrameSabotage::Corrupt));
        assert_eq!(frames.on_job(0, false).answer, Some(FrameSabotage::Truncate));
        assert_eq!(frames.on_job(0, false).answer, None);
        assert!(WorkerFaultHarness::default().is_empty());
        assert!(!h.is_empty());
    }

    #[test]
    fn respawn_backoff_is_deterministic_exponential_and_capped() {
        let base = Duration::from_millis(25);
        let a = respawn_backoff(42, 0, 1, base);
        assert_eq!(a, respawn_backoff(42, 0, 1, base), "pure function of its inputs");
        // Exponential growth: each consecutive failure at least doubles
        // the floor, up to the 64x cap.
        for failures in 1..=6 {
            let floor = base.saturating_mul(1 << (failures - 1));
            let delay = respawn_backoff(42, 0, failures, base);
            assert!(delay >= floor, "failure {failures}: {delay:?} < {floor:?}");
            assert!(delay < floor + base, "jitter bounded by base");
        }
        assert_eq!(
            respawn_backoff(42, 0, 50, base).as_millis() / 25,
            respawn_backoff(42, 0, 7, base).as_millis() / 25,
            "caps at 64x"
        );
        // The documented saturation point: even a pathological failure
        // count never shifts past the cap (and never overflows).
        let cap = base.saturating_mul(1 << MAX_BACKOFF_DOUBLINGS);
        let extreme = respawn_backoff(42, 0, u32::MAX, base);
        assert!(extreme >= cap && extreme < cap + base, "{extreme:?}");
        // Different slots fan out (jitter decorrelates lockstep retries).
        assert_ne!(respawn_backoff(42, 0, 1, base), respawn_backoff(42, 1, 1, base));
        // Zero base degenerates to zero without dividing by it.
        assert_eq!(respawn_backoff(42, 0, 1, Duration::ZERO), Duration::ZERO);
    }
}
