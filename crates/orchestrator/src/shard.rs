//! Shard planning, execution and deterministic merging.
//!
//! A campaign budget of N programs is decomposed into K shards, each an
//! independently runnable sub-campaign with its own RNG streams derived by
//! XOR-ing a mixed shard index into the campaign seed (shard 0 maps to the
//! seed itself and therefore runs the *exact* stream of the sequential
//! campaign, which is what makes `K = 1` orchestrated runs bit-identical
//! to [`llm4fp::Campaign::run`]; the index is spread by a large odd
//! multiplier so shards of campaigns with adjacent seeds never collide —
//! plain `seed ^ index` would make seed 43's shard 1 replay seed 42's
//! shard 0 stream, coupling supposedly independent replicates). Shards
//! never communicate;
//! like tiles with matching edge rules, their outputs compose into the
//! campaign result by a deterministic merge in shard order, so the final
//! result depends only on `(config, K)` — never on worker count or
//! completion order.

use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use llm4fp::{CampaignConfig, CampaignResult, CampaignRunner, ProgramRecord, RunnerCheckpoint};
use llm4fp_difftest::{Aggregates, ProcessBudget, ResultCache};
use llm4fp_fpir::source_hash;
use llm4fp_telemetry::Telemetry;

/// Plan for one shard of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Shard index within the campaign (0-based).
    pub index: usize,
    /// Number of programs this shard runs.
    pub budget: usize,
    /// Global index of this shard's first program.
    pub offset: usize,
    /// Derived base seed for the shard's RNG streams.
    pub seed: u64,
}

/// Large odd multiplier (the 64-bit golden-ratio constant) spreading the
/// shard index across the seed space; odd, so distinct indices map to
/// distinct offsets, and index 0 maps to 0 (preserving the `K = 1`
/// sequential-equality contract).
const SHARD_SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// The derived base seed for one shard of a campaign.
pub fn shard_seed(campaign_seed: u64, index: usize) -> u64 {
    campaign_seed ^ (index as u64).wrapping_mul(SHARD_SEED_MIX)
}

/// Split a budget of `programs` into `shards` shard specs. Budgets differ
/// by at most one program (the remainder goes to the leading shards) and
/// shard seeds come from [`shard_seed`].
pub fn plan_shards(config: &CampaignConfig, shards: usize) -> Vec<ShardSpec> {
    let shards = shards.max(1).min(config.programs.max(1));
    let base = config.programs / shards;
    let remainder = config.programs % shards;
    let mut specs = Vec::with_capacity(shards);
    let mut offset = 0;
    for index in 0..shards {
        let budget = base + usize::from(index < remainder);
        specs.push(ShardSpec { index, budget, offset, seed: shard_seed(config.seed, index) });
        offset += budget;
    }
    specs
}

/// Everything one executed shard contributes to the merged campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardOutput {
    /// The plan this shard executed (validated on resume).
    pub spec: ShardSpec,
    /// Per-program records with *shard-local* indices.
    pub records: Vec<ProgramRecord>,
    /// Sources of the shard's valid programs, in generation order.
    pub sources: Vec<String>,
    /// Deduplicated sources of inconsistency-triggering programs.
    pub successful_sources: Vec<String>,
    /// The shard's aggregated differential-testing statistics.
    pub aggregates: Aggregates,
    /// Generation attempts that produced invalid programs.
    pub generation_failures: usize,
    /// LLM calls made by this shard.
    pub llm_calls: u64,
    /// Simulated LLM API latency accumulated by this shard.
    pub simulated_llm_time: Duration,
    /// Wall-clock time this shard actually spent computing.
    pub pipeline_time: Duration,
    /// Largest VM register file the shard's reused execution scratch
    /// prepared (`None` in shard files persisted before it was recorded;
    /// 0 for campaigns that never ran a virtual matrix).
    pub peak_regs: Option<usize>,
}

/// Why one shard contributed nothing to a merged campaign: it exhausted
/// its dispatch budget and was quarantined instead of aborting the run
/// (see [`crate::executor::FailurePolicy::Quarantine`]). Serialized into
/// `summary.json` so an unattended chaos run leaves an auditable record
/// of exactly which shards were lost, after how many attempts, and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardFailureReport {
    /// The failed shard's index within its campaign plan.
    pub shard: usize,
    /// Dispatch attempts spent before quarantining.
    pub attempts: u32,
    /// The last dispatch's failure, verbatim.
    pub last_error: String,
}

/// Split one shard's budget into `epochs` consecutive segment lengths
/// (differing by at most one program, remainder on the leading epochs).
/// Zero-length segments are legal — a shard smaller than the epoch count
/// simply sits out the tail epochs at the barrier.
pub fn plan_epoch_segments(budget: usize, epochs: usize) -> Vec<usize> {
    let epochs = epochs.max(1);
    let base = budget / epochs;
    let remainder = budget % epochs;
    (0..epochs).map(|epoch| base + usize::from(epoch < remainder)).collect()
}

/// One shard of an epoch-sliced campaign: a [`CampaignRunner`] that runs
/// its budget in segments, pausing at epoch barriers where the
/// orchestrator collects the segment's newly found successful sources
/// (the *delta*), merges all shards' deltas, and injects the merged pool
/// back before the next segment.
///
/// Running every segment back to back without injections is exactly
/// [`run_shard`] — which is why one exchange epoch reproduces the
/// no-exchange sharded output bit for bit.
pub struct ShardRunner {
    spec: ShardSpec,
    runner: CampaignRunner,
    next_local: usize,
    /// Successful-set length at the last barrier; everything above it was
    /// found by this shard during the current segment.
    watermark: usize,
}

impl ShardRunner {
    /// Start a fresh shard. Input sets derive from the parent campaign's
    /// seed (not the shard seed) so duplicates across shards share inputs
    /// and the cross-shard cache stays semantically transparent.
    pub fn new(config: &CampaignConfig, spec: ShardSpec, cache: Option<Arc<ResultCache>>) -> Self {
        let mut shard_config = config.clone();
        shard_config.programs = spec.budget;
        shard_config.seed = spec.seed;
        let mut runner = CampaignRunner::new(shard_config).with_input_seed(config.seed);
        if let Some(cache) = cache {
            runner = runner.with_cache(cache);
        }
        ShardRunner { spec, runner, next_local: 0, watermark: 0 }
    }

    /// Rebuild a shard paused at an epoch barrier from a checkpoint taken
    /// by [`ShardRunner::checkpoint`] there. Checkpoints are taken after
    /// pool injection, so the restored watermark (everything currently in
    /// the set) marks exactly where the next segment's delta begins.
    pub fn from_checkpoint(
        config: &CampaignConfig,
        spec: ShardSpec,
        cache: Option<Arc<ResultCache>>,
        checkpoint: RunnerCheckpoint,
    ) -> Self {
        let mut shard_config = config.clone();
        shard_config.programs = spec.budget;
        shard_config.seed = spec.seed;
        let next_local = checkpoint.records.len();
        let watermark = checkpoint.successful.sources.len();
        let mut runner = CampaignRunner::restore(shard_config, checkpoint);
        if let Some(cache) = cache {
            runner = runner.with_cache(cache);
        }
        ShardRunner { spec, runner, next_local, watermark }
    }

    /// Throttle this shard's external process spawns with a budget shared
    /// across the run (the orchestrator's process-pool knob; a no-op for
    /// virtual-backend campaigns).
    pub fn with_process_budget(mut self, budget: Arc<ProcessBudget>) -> Self {
        self.runner.set_process_budget(budget);
        self
    }

    /// Attach a telemetry lane handle (pure observation: results are
    /// bit-identical with or without it). Telemetry is never part of
    /// checkpoints, so restored shards must re-attach their lane —
    /// [`ShardRunner::from_checkpoint`] leaves it disabled.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.runner.set_telemetry(telemetry);
        self
    }

    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Local index of the next program to run (== programs processed).
    pub fn programs_run(&self) -> usize {
        self.next_local
    }

    /// Run the next `count` programs (clamped to the remaining budget) and
    /// return the sources this shard newly found during the segment — the
    /// delta the barrier merges. `on_record` observes every processed
    /// program (the persistence layer streams progress lines through it).
    pub fn run_segment(
        &mut self,
        count: usize,
        mut on_record: impl FnMut(&ProgramRecord),
    ) -> Vec<String> {
        let end = (self.next_local + count).min(self.spec.budget);
        for local in self.next_local..end {
            on_record(self.runner.run_one(local));
        }
        self.next_local = end;
        let delta = self.runner.successful_sources_from(self.watermark);
        self.watermark = self.runner.successful_len();
        delta
    }

    /// Inject the merged cross-shard pool into this shard's feedback set
    /// (structurally deduplicated; the shard's own finds stay first, in
    /// their original order). Returns how many sources were new here.
    pub fn inject(&mut self, pool: &[String]) -> usize {
        let added = self.runner.inject_successful(pool);
        self.watermark = self.runner.successful_len();
        added
    }

    /// Snapshot the paused runner for persistence (call at a barrier,
    /// after [`ShardRunner::inject`]).
    pub fn checkpoint(&self) -> RunnerCheckpoint {
        self.runner.checkpoint()
    }

    /// Finish the shard (all segments run) and assemble its output.
    pub fn finish(self) -> ShardOutput {
        debug_assert_eq!(self.next_local, self.spec.budget, "shard finished early");
        let peak_regs = self.runner.peak_register_file();
        let result = self.runner.finish();
        ShardOutput {
            spec: self.spec,
            records: result.records,
            sources: result.sources,
            successful_sources: result.successful_sources,
            aggregates: result.aggregates,
            generation_failures: result.generation_failures,
            llm_calls: result.llm_calls,
            simulated_llm_time: result.simulated_llm_time,
            pipeline_time: result.pipeline_time,
            peak_regs: Some(peak_regs),
        }
    }
}

/// Everything a shard needs besides its own plan: the parent campaign's
/// configuration plus the optional shared machinery (cache, process
/// budget, telemetry lane). One context serves any number of shards, and
/// every attachment is a pure observer or scheduler — the shard's output
/// is a function of `(config, spec)` alone.
#[derive(Debug, Clone)]
pub struct ShardCtx<'a> {
    config: &'a CampaignConfig,
    cache: Option<Arc<ResultCache>>,
    budget: Option<Arc<ProcessBudget>>,
    telemetry: Telemetry,
}

impl<'a> ShardCtx<'a> {
    /// A bare context: no cache, no process budget, telemetry disabled.
    pub fn new(config: &'a CampaignConfig) -> Self {
        ShardCtx { config, cache: None, budget: None, telemetry: Telemetry::disabled() }
    }

    /// Share a cross-shard result cache (semantically transparent).
    pub fn with_cache(mut self, cache: Option<Arc<ResultCache>>) -> Self {
        self.cache = cache;
        self
    }

    /// Throttle external process spawns with a shared budget (scheduling
    /// only — never changes recorded output).
    pub fn with_process_budget(mut self, budget: Option<Arc<ProcessBudget>>) -> Self {
        self.budget = budget;
        self
    }

    /// Attach a telemetry lane handle (pure observation).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Run one shard to completion without exchange barriers. Record
/// streaming lives in the executor layer's `RecordSink`; this entry
/// point is the one-shot form of driving a [`ShardRunner`] by hand.
pub fn run_shard(spec: &ShardSpec, ctx: &ShardCtx<'_>) -> ShardOutput {
    let mut runner = ShardRunner::new(ctx.config, *spec, ctx.cache.clone())
        .with_telemetry(ctx.telemetry.clone());
    if let Some(budget) = &ctx.budget {
        runner = runner.with_process_budget(budget.clone());
    }
    runner.run_segment(spec.budget, |_| {});
    runner.finish()
}

/// Merge shard outputs (in shard order) into one campaign result.
/// Record indices are rebased from shard-local to global positions, and
/// the successful-source union is re-deduplicated (shards dedup only
/// internally, so the same program triggering in two shards would
/// otherwise appear twice — `CampaignResult::successful_sources`
/// promises structural uniqueness). Deterministic: depends only on the
/// outputs, not on how they were scheduled. `pipeline_time` becomes the
/// merged result's pipeline time.
pub fn merge_shards(
    config: &CampaignConfig,
    mut outputs: Vec<ShardOutput>,
    pipeline_time: Duration,
) -> CampaignResult {
    outputs.sort_by_key(|o| o.spec.index);
    let mut aggregates = Aggregates::new();
    let mut records = Vec::with_capacity(config.programs);
    let mut sources = Vec::new();
    let mut successful_sources: Vec<String> = Vec::new();
    let mut successful_seen = std::collections::HashSet::new();
    let mut generation_failures = 0;
    let mut llm_calls = 0;
    let mut simulated_llm_time = Duration::ZERO;
    for output in outputs {
        aggregates.merge(&output.aggregates);
        let offset = output.spec.offset;
        records.extend(output.records.into_iter().map(|mut r| {
            r.index += offset;
            r
        }));
        sources.extend(output.sources);
        for source in output.successful_sources {
            if successful_seen.insert(source_hash(&source)) {
                successful_sources.push(source);
            }
        }
        generation_failures += output.generation_failures;
        llm_calls += output.llm_calls;
        simulated_llm_time += output.simulated_llm_time;
    }
    CampaignResult {
        config: config.clone(),
        aggregates,
        records,
        sources,
        successful_sources,
        generation_failures,
        llm_calls,
        simulated_llm_time,
        pipeline_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm4fp::ApproachKind;

    #[test]
    fn plans_split_budgets_evenly_with_leading_remainder() {
        let config = CampaignConfig::new(ApproachKind::Varity).with_budget(10).with_seed(42);
        let specs = plan_shards(&config, 3);
        assert_eq!(specs.len(), 3);
        assert_eq!(specs.iter().map(|s| s.budget).collect::<Vec<_>>(), vec![4, 3, 3]);
        assert_eq!(specs.iter().map(|s| s.offset).collect::<Vec<_>>(), vec![0, 4, 7]);
        assert_eq!(
            specs.iter().map(|s| s.seed).collect::<Vec<_>>(),
            vec![shard_seed(42, 0), shard_seed(42, 1), shard_seed(42, 2)]
        );
        assert_eq!(specs.iter().map(|s| s.budget).sum::<usize>(), 10);
    }

    #[test]
    fn shard_seeds_never_collide_across_nearby_campaign_seeds() {
        // Plain `seed ^ index` would make campaign 43's shard 1 replay
        // campaign 42's shard 0 stream; the mixed derivation must not.
        assert_eq!(shard_seed(42, 0), 42, "K = 1 contract: shard 0 uses the campaign seed");
        let mut seen = std::collections::HashSet::new();
        for campaign_seed in 0u64..64 {
            for index in 0..64 {
                assert!(
                    seen.insert(shard_seed(campaign_seed, index)),
                    "collision at seed {campaign_seed} shard {index}"
                );
            }
        }
    }

    #[test]
    fn plans_clamp_to_sane_shard_counts() {
        let config = CampaignConfig::new(ApproachKind::Varity).with_budget(3);
        assert_eq!(plan_shards(&config, 0).len(), 1);
        // Never more shards than programs.
        assert_eq!(plan_shards(&config, 8).len(), 3);
    }

    #[test]
    fn shard_zero_runs_the_sequential_stream() {
        let config =
            CampaignConfig::new(ApproachKind::Varity).with_budget(8).with_seed(9).with_threads(1);
        let specs = plan_shards(&config, 1);
        let output = run_shard(&specs[0], &ShardCtx::new(&config));
        let sequential = llm4fp::Campaign::new(config.clone()).run();
        assert_eq!(output.records, sequential.records);
        assert_eq!(output.sources, sequential.sources);
        assert_eq!(output.aggregates, sequential.aggregates);
    }

    #[test]
    fn epoch_segments_tile_the_budget() {
        assert_eq!(plan_epoch_segments(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(plan_epoch_segments(3, 4), vec![1, 1, 1, 0]);
        assert_eq!(plan_epoch_segments(8, 1), vec![8]);
        assert_eq!(plan_epoch_segments(0, 3), vec![0, 0, 0]);
        for (budget, epochs) in [(103, 7), (5, 5), (12, 1)] {
            assert_eq!(plan_epoch_segments(budget, epochs).iter().sum::<usize>(), budget);
        }
    }

    /// Field-wise equality minus `pipeline_time` (wall clocks never
    /// reproduce across runs).
    fn assert_outputs_identical(a: &ShardOutput, b: &ShardOutput) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.records, b.records);
        assert_eq!(a.sources, b.sources);
        assert_eq!(a.successful_sources, b.successful_sources);
        assert_eq!(a.aggregates, b.aggregates);
        assert_eq!(a.generation_failures, b.generation_failures);
        assert_eq!(a.llm_calls, b.llm_calls);
        assert_eq!(a.simulated_llm_time, b.simulated_llm_time);
    }

    #[test]
    fn segmented_execution_equals_one_shot_run_shard() {
        let config =
            CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(20).with_seed(6).with_threads(1);
        let spec = plan_shards(&config, 2)[1];
        let oneshot = run_shard(&spec, &ShardCtx::new(&config));
        let mut runner = ShardRunner::new(&config, spec, None);
        for segment in plan_epoch_segments(spec.budget, 4) {
            runner.run_segment(segment, |_| {});
        }
        assert_outputs_identical(&runner.finish(), &oneshot);
    }

    #[test]
    fn checkpointed_shard_runners_resume_bit_identically() {
        let config =
            CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(24).with_seed(31).with_threads(1);
        let spec = plan_shards(&config, 2)[0];
        let pool =
            vec!["void compute(double z) { comp = z * z; }".to_string(), "bogus".to_string()];

        let mut reference = ShardRunner::new(&config, spec, None);
        reference.run_segment(6, |_| {});
        reference.inject(&pool);
        let checkpoint = reference.checkpoint();
        reference.run_segment(spec.budget, |_| {});
        let reference = reference.finish();

        let mut restored = ShardRunner::from_checkpoint(&config, spec, None, checkpoint);
        assert_eq!(restored.programs_run(), 6);
        restored.run_segment(spec.budget, |_| {});
        assert_outputs_identical(&restored.finish(), &reference);
    }

    #[test]
    fn merge_rebases_record_indices() {
        let config =
            CampaignConfig::new(ApproachKind::Varity).with_budget(9).with_seed(4).with_threads(1);
        let outputs: Vec<ShardOutput> = plan_shards(&config, 3)
            .iter()
            .map(|spec| run_shard(spec, &ShardCtx::new(&config)))
            .collect();
        let merged = merge_shards(&config, outputs, Duration::ZERO);
        assert_eq!(merged.records.len(), 9);
        for (i, record) in merged.records.iter().enumerate() {
            assert_eq!(record.index, i);
        }
        assert_eq!(merged.aggregates.programs, 9);
    }
}
