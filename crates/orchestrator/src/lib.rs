//! # llm4fp-orchestrator
//!
//! The scalable execution engine over `llm4fp`'s campaign framework:
//! where [`llm4fp::Campaign`] runs one budget sequentially, the
//! orchestrator decomposes it into independent shards, executes them
//! through a pluggable transport, and deterministically merges the
//! outputs.
//!
//! ```text
//!            CampaignConfig (budget N, seed S)
//!                          |
//!                  plan_shards(config, K)
//!                          |
//!      +------- K shards, seed S ^ mix(k) -------+
//!      |                   |                      |
//!      |        ShardExecutor::begin(tasks, sink) |
//!      |                   |                      |
//!      |   InProcessExecutor  ProcessPoolExecutor  RemoteWorkerExecutor
//!      |   (thread pool +     (llm4fp-worker        (llm4fp-worker
//!      |    shared cache)      daemons over pipes,   --connect over TCP,
//!      |                       crash/straggler       leases + heartbeats +
//!      |                       redispatch)           reconnect-and-resume)
//!      |                   |                      |
//!   ShardOutput       ShardOutput            ShardOutput   --> JSONL run dir
//!      +---------------- merge (shard order) ----------------+  (optional)
//!                          |
//!                   CampaignResult
//! ```
//!
//! **Determinism contract.** A sharded run is a pure function of
//! `(config, K, E)` where `E` is the feedback-exchange epoch count:
//! every shard derives its RNG streams from
//! `config.seed ^ mix(shard_index)` (mix(0) = 0, so shard 0 replays the
//! sequential stream), program inputs
//! are derived from the program's structural hash (so the shared result
//! cache is semantically transparent), shards only communicate at
//! deterministic epoch barriers (merge in shard-index order, broadcast of
//! the merged pool), and outputs merge in shard order.
//! Worker count, scheduling order, caching, **transport** (in-process
//! threads or out-of-process worker daemons, including worker crashes and
//! straggler re-dispatch), and interruption/resume all leave the result
//! bit-identical. For `K = 1`, shard 0's streams are exactly the
//! sequential campaign's, so the orchestrated result matches
//! [`llm4fp::Campaign::run`] field for field — for any `E`, since a
//! single shard's exchange is a structural no-op.
//!
//! The trade-off at `K > 1` with `E = 1` (the default): each shard
//! maintains its own feedback set (Feedback-Based Mutation draws only
//! from inconsistencies its own shard found), which removes cross-program
//! sequencing and makes the decomposition embarrassingly parallel.
//! Setting `E > 1` buys the global feedback pool back at the cost of
//! `E - 1` barrier synchronizations: after each of the `E` budget
//! segments, per-shard deltas are merged (structurally deduplicated, in
//! shard-index order) and broadcast, so from epoch `e + 1` every shard
//! mutates programs drawn from the union of all shards' findings — the
//! paper's feedback loop at campaign scale rather than shard scale.
//!
//! Provided here:
//!
//! * [`Orchestrator`] — the builder API for one campaign: shard count,
//!   exchange epochs, caching, persistent resumable run directories
//!   ([`Orchestrator::resume`], including mid-campaign restore from
//!   epoch-barrier checkpoints), telemetry, and the transport;
//! * [`executor`] — the transport seam: [`ShardExecutor`] /
//!   [`ShardSession`] and the in-process implementation;
//! * [`process_pool`] — the out-of-process transport
//!   ([`ProcessPoolExecutor`]) farming [`wire`] jobs to `llm4fp-worker`
//!   daemons with per-shard timeouts, crash-and-redispatch and straggler
//!   re-dispatch;
//! * [`remote`] — the socket transport ([`RemoteWorkerExecutor`]):
//!   workers dial a TCP coordinator (`llm4fp-worker --connect`) behind a
//!   versioned handshake, supervised by deadline leases, idle heartbeats
//!   and reconnect-and-resume;
//! * [`supervisor`] — the transport-shared supervision core: lease-based
//!   dispatch ledgers ([`supervisor::EpochState`]) and the session half
//!   both pool transports fold epochs through
//!   ([`supervisor::SessionCore`]);
//! * [`Scheduler`] — multi-campaign suites (all four Table 2 approaches)
//!   over one shared worker budget, with per-campaign exchange;
//! * [`shard`] — the shard planning/merging primitives and the
//!   segment-capable [`ShardRunner`];
//! * [`pool`] — the indexed worker pool and the [`pool::run_epochs`]
//!   barrier protocol;
//! * [`persist`] — the JSONL run-directory format with per-epoch pool
//!   and checkpoint records, crash-safe (atomic temp+rename artifacts,
//!   torn-tail tolerance, schema-versioned manifests);
//! * [`faults`] — deterministic fault injection ([`FaultPlan`]) for
//!   chaos-testing the supervisor: worker crashes/stalls/frame sabotage,
//!   respawn failures, torn run-dir writes, and network faults for the
//!   socket transport (dropped connections, delayed/duplicated/torn
//!   result frames, refused handshakes).
//!
//! **Failure model.** Supervision is configurable per transport: a job
//! that exhausts its dispatch budget either aborts the run (default —
//! determinism preserved, error surfaced) or is *quarantined*
//! ([`FailurePolicy::Quarantine`]) so the campaign completes on the
//! surviving shards with per-shard [`ShardFailureReport`]s in
//! [`RunStats::failures`]. A transport whose workers can't be spawned at
//! all can degrade to in-process execution
//! ([`Orchestrator::fallback_to_in_process`]) with bit-identical
//! results.
//!
//! ```no_run
//! use llm4fp::{ApproachKind, CampaignConfig};
//! use llm4fp_orchestrator::Orchestrator;
//!
//! let config = CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(1_000);
//! let outcome = Orchestrator::new(config).shards(8).run().expect("in-memory run");
//! println!("rate: {:.2}%", 100.0 * outcome.result.inconsistency_rate());
//! ```

#![deny(unsafe_code)]

pub mod executor;
pub mod faults;
pub mod orchestrate;
pub mod persist;
pub mod pool;
pub mod process_pool;
pub mod remote;
pub mod scheduler;
pub mod shard;
pub mod supervisor;
pub mod wire;

pub use executor::{
    FailurePolicy, InProcessExecutor, NullSink, OrchestratorError, RecordSink, SessionOutcome,
    ShardExecutor, ShardSession, ShardTask,
};
pub use faults::{
    FaultPlan, NetworkFault, PersistFault, WorkerFault, WorkerFaultSet, MAX_BACKOFF_DOUBLINGS,
};
pub use orchestrate::{
    default_workers, matches_sequential, OrchestratedResult, Orchestrator, OrchestratorOptions,
    RunStats,
};
pub use persist::{Artifact, PersistError, RunDir, RunManifest, MANIFEST_SCHEMA};
pub use process_pool::ProcessPoolExecutor;
pub use remote::RemoteWorkerExecutor;
pub use scheduler::Scheduler;
pub use shard::{
    merge_shards, plan_epoch_segments, plan_shards, run_shard, shard_seed, ShardCtx,
    ShardFailureReport, ShardOutput, ShardRunner, ShardSpec,
};
pub use wire::{Hello, WireError, PROTOCOL_VERSION};
