//! # llm4fp-orchestrator
//!
//! The scalable execution engine over `llm4fp`'s campaign framework:
//! where [`llm4fp::Campaign`] runs one budget sequentially, the
//! orchestrator decomposes it into independent shards, executes them on a
//! worker pool, and deterministically merges the outputs.
//!
//! ```text
//!            CampaignConfig (budget N, seed S)
//!                          |
//!                  plan_shards(config, K)
//!                          |
//!      +------- K shards, seed S ^ mix(k) -------+
//!      |                   |                      |
//!   CampaignRunner    CampaignRunner  ...    CampaignRunner     worker pool
//!      |   \               |   /                  |             (W threads)
//!      |    +---- shared ResultCache (optional)---+
//!      |                   |                      |
//!   ShardOutput       ShardOutput            ShardOutput   --> JSONL run dir
//!      +---------------- merge (shard order) ----------------+  (optional)
//!                          |
//!                   CampaignResult
//! ```
//!
//! **Determinism contract.** A sharded run is a pure function of
//! `(config, K)`: every shard derives its RNG streams from
//! `config.seed ^ mix(shard_index)` (mix(0) = 0, so shard 0 replays the
//! sequential stream), shards never communicate, program inputs
//! are derived from the program's structural hash (so the shared result
//! cache is semantically transparent), and outputs merge in shard order.
//! Worker count, scheduling order, caching, and interruption/resume all
//! leave the result bit-identical. For `K = 1`, shard 0's streams are
//! exactly the sequential campaign's, so the orchestrated result matches
//! [`llm4fp::Campaign::run`] field for field.
//!
//! The trade-off at `K > 1`: each shard maintains its own feedback set
//! (Feedback-Based Mutation draws only from inconsistencies its own shard
//! found), which is what removes cross-program sequencing and makes the
//! decomposition embarrassingly parallel.
//!
//! Provided here:
//!
//! * [`Orchestrator`] — sharded execution with optional caching and
//!   persistent, resumable run directories ([`Orchestrator::resume`]);
//! * [`Scheduler`] — multi-campaign suites (all four Table 2 approaches)
//!   over one shared worker budget;
//! * [`shard`] — the shard planning/merging primitives;
//! * [`persist`] — the JSONL run-directory format.
//!
//! ```no_run
//! use llm4fp::{ApproachKind, CampaignConfig};
//! use llm4fp_orchestrator::Orchestrator;
//!
//! let config = CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(1_000);
//! let result = Orchestrator::run_sharded(&config, 8);
//! println!("rate: {:.2}%", 100.0 * result.inconsistency_rate());
//! ```

#![deny(unsafe_code)]

pub mod orchestrate;
pub mod persist;
pub mod pool;
pub mod scheduler;
pub mod shard;

pub use orchestrate::{
    default_workers, matches_sequential, OrchestratedResult, Orchestrator, OrchestratorOptions,
    RunStats,
};
pub use persist::{PersistError, RunDir, RunManifest};
pub use scheduler::Scheduler;
pub use shard::{merge_shards, plan_shards, run_shard, shard_seed, ShardOutput, ShardSpec};
