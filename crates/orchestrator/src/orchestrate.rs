//! The campaign orchestrator: sharded execution on a worker pool, with
//! optional epoch-based cross-shard feedback exchange, result caching and
//! persistent, resumable run directories.
//!
//! ## Cross-shard feedback exchange
//!
//! A plain sharded run keeps each shard's successful set private, so at
//! `K` shards Feedback-Based Mutation draws from ~1/K of the campaign's
//! findings. With `epochs = E > 1` every shard runs its budget in `E`
//! segments; after each segment the shards synchronize at a deterministic
//! barrier where their newly found successful sources (the *deltas*) are
//! merged in shard-index order into a global pool — structurally
//! deduplicated with the same hashing as the per-shard sets — and the
//! merged pool is broadcast back, so every shard's feedback mutation
//! draws from the union in the next epoch.
//!
//! The determinism contract extends to `(config, K, E)`: barrier order is
//! fixed by shard index (never completion order), so results stay
//! bit-identical across worker counts, and `E = 1` runs the exact
//! no-exchange code path. Persisted multi-epoch runs record the pool and
//! every shard's paused-runner checkpoint at each barrier, so a killed
//! campaign resumes mid-run from the latest complete barrier and still
//! reproduces the uninterrupted result bit for bit.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use llm4fp::{Campaign, CampaignConfig, CampaignResult, SuccessfulSet};
use llm4fp_difftest::{CacheStats, ProcessBudget, ResultCache};
use llm4fp_telemetry::{keys, TelemetryHub, TelemetrySpec, TelemetrySummary};

use crate::persist::{PersistError, RunDir, RunManifest, ShardWriter};
use crate::pool::{run_epochs, run_indexed};
use crate::shard::{
    merge_shards, plan_epoch_segments, plan_shards, run_shard_instrumented, ShardOutput,
    ShardRunner, ShardSpec,
};

/// How an orchestrated run executes.
#[derive(Debug, Clone)]
pub struct OrchestratorOptions {
    /// Worker threads for shard execution (shards themselves also
    /// parallelize their difftest matrix with `config.threads` workers).
    /// Defaults to the machine's available parallelism.
    pub workers: usize,
    /// Share a differential-testing result cache across shards.
    pub cache: bool,
    /// Feedback-exchange epochs. `1` (the default) disables exchange and
    /// reproduces the independent-shard output exactly; `E > 1` slices
    /// every shard's budget into `E` segments with a merge-and-broadcast
    /// barrier between consecutive segments.
    pub epochs: usize,
    /// The process-pool bound for external-backend campaigns: at most
    /// this many shards spawn compiler/binary processes concurrently,
    /// **separately** from the thread pool — a mixed virtual/real suite
    /// keeps its virtual shards saturating `workers` threads on the
    /// sealed VM while the external shards throttle their spawns.
    /// Throttling changes wall-clock interleaving only; recorded results
    /// and merge order are unaffected. Defaults to the machine's
    /// available parallelism; ignored by virtual campaigns.
    pub process_slots: usize,
    /// Persist the run (config, per-program progress, epoch barriers,
    /// shard outputs, merged result) into this directory, and resume from
    /// whatever complete state is already present.
    pub run_dir: Option<PathBuf>,
    /// Telemetry collection for this run (off by default — the disabled
    /// path costs one branch per call site). With `metrics` on, persisted
    /// runs also write the deterministic `metrics.json` flight recorder;
    /// with `trace` on, a Chrome `trace_event`-compatible `trace.jsonl`.
    /// Collection is pure observation: results are bit-identical with
    /// telemetry on or off.
    pub telemetry: TelemetrySpec,
}

impl Default for OrchestratorOptions {
    fn default() -> Self {
        OrchestratorOptions {
            workers: default_workers(),
            cache: true,
            epochs: 1,
            process_slots: default_workers(),
            run_dir: None,
            telemetry: TelemetrySpec::OFF,
        }
    }
}

/// The machine's available parallelism (1 when unknown).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Execution statistics of one orchestrated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of shards in the plan.
    pub shards: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Feedback-exchange epochs the plan was sliced into.
    pub epochs: usize,
    /// Shards loaded from a persisted run directory instead of computed.
    pub shards_reused: usize,
    /// Shards computed this run.
    pub shards_computed: usize,
    /// Epochs skipped by restoring persisted barrier checkpoints instead
    /// of recomputing them (multi-epoch resume).
    pub epochs_restored: usize,
    /// Result-cache statistics (`None` when caching was off).
    pub cache: Option<CacheStats>,
    /// Largest VM register file any shard's reused execution scratch
    /// prepared during this run — a readout of the seal-time register
    /// coalescing. `None` when no shard reported one (all shards reused
    /// from a pre-optimizer run dir); telemetry only, never part of the
    /// determinism contract (resumed shards count only their recomputed
    /// segment).
    pub peak_regs: Option<usize>,
    /// Wall-clock duration of the orchestrated run.
    pub wall_time: Duration,
    /// Sum of the computed shards' pipeline times (the work the pool
    /// actually performed; `wall_time` approaches this divided by the
    /// effective worker count).
    pub shard_pipeline_time: Duration,
    /// Telemetry roll-up (`None` when telemetry was off). Counter-derived
    /// fields are deterministic for fully computed runs; the time fields
    /// describe only work computed in *this* invocation.
    pub telemetry: Option<TelemetrySummary>,
}

impl RunStats {
    /// One-line human-readable summary, including the result-cache hit
    /// rate (the JSONL run directory persists the same data as
    /// `summary.json`).
    pub fn summary_line(&self) -> String {
        let cache = match &self.cache {
            Some(c) => format!(
                "cache {}/{} hits ({:.1}%)",
                c.hits,
                c.hits + c.misses,
                100.0 * c.hit_rate()
            ),
            None => "cache off".to_string(),
        };
        let peak = match self.peak_regs {
            Some(regs) => format!(", peak register file {regs}"),
            None => String::new(),
        };
        let telemetry = match &self.telemetry {
            Some(t) => format!(
                ", telemetry: {} keys, {} fallback(s), {:.2}s seal / {:.2}s exec",
                t.counter_keys,
                t.interpreter_fallbacks,
                t.seal_time.as_secs_f64(),
                t.exec_time.as_secs_f64()
            ),
            None => String::new(),
        };
        format!(
            "{} shard(s) x {} epoch(s) on {} worker(s), {} reused, \
             {:.2}s wall ({:.2}s shard time), {}{}{}",
            self.shards,
            self.epochs,
            self.workers,
            self.shards_reused,
            self.wall_time.as_secs_f64(),
            self.shard_pipeline_time.as_secs_f64(),
            cache,
            peak,
            telemetry
        )
    }
}

/// A merged campaign result plus how it was produced.
#[derive(Debug, Clone)]
pub struct OrchestratedResult {
    pub result: CampaignResult,
    pub stats: RunStats,
}

/// Drives sharded campaign runs. See the crate docs for the determinism
/// contract: results are a pure function of `(config, shard count,
/// epoch count)`.
#[derive(Debug, Clone, Default)]
pub struct Orchestrator {
    options: OrchestratorOptions,
}

impl Orchestrator {
    pub fn new(options: OrchestratorOptions) -> Self {
        Orchestrator { options }
    }

    pub fn options(&self) -> &OrchestratorOptions {
        &self.options
    }

    /// Convenience entry point: run `config` split into `shards` shards on
    /// the default worker pool with caching enabled and no feedback
    /// exchange, returning just the campaign result. Bit-deterministic
    /// across worker counts; for `shards == 1` the result matches
    /// [`Campaign::run`] exactly.
    pub fn run_sharded(config: &CampaignConfig, shards: usize) -> CampaignResult {
        Self::run_sharded_epochs(config, shards, 1)
    }

    /// Like [`Orchestrator::run_sharded`], with `epochs` cross-shard
    /// feedback-exchange epochs (`epochs == 1` is exactly `run_sharded`).
    pub fn run_sharded_epochs(
        config: &CampaignConfig,
        shards: usize,
        epochs: usize,
    ) -> CampaignResult {
        Orchestrator::new(OrchestratorOptions { epochs, ..OrchestratorOptions::default() })
            .run(config, shards)
            .expect("in-memory orchestrated run cannot fail")
            .result
    }

    /// Run one campaign decomposed into `shards` shards. Only persistence
    /// problems error; a memory-only run always succeeds.
    pub fn run(
        &self,
        config: &CampaignConfig,
        shards: usize,
    ) -> Result<OrchestratedResult, PersistError> {
        let start = Instant::now();
        let specs = plan_shards(config, shards);
        let epochs = self.options.epochs.max(1);
        let cache = self.options.cache.then(|| Arc::new(ResultCache::new()));
        let run_dir = match &self.options.run_dir {
            Some(root) => Some(RunDir::open(
                root,
                &RunManifest { config: config.clone(), shards: specs.len(), epochs },
            )?),
            None => None,
        };
        let hub = TelemetryHub::new(self.options.telemetry);
        let outcome = {
            // The orchestrator's own lane sits past every shard lane.
            let _run = hub.lane(specs.len()).span(keys::SPAN_RUN);
            self.execute(config, &specs, epochs, cache.as_ref(), run_dir.as_ref(), &hub)
        };
        let peak_regs = outcome.outputs.iter().filter_map(|o| o.peak_regs).max();
        let result = merge_shards(config, outcome.outputs, start.elapsed());
        let stats = RunStats {
            shards: specs.len(),
            workers: self.options.workers.max(1),
            epochs,
            shards_reused: outcome.reused,
            shards_computed: outcome.computed,
            epochs_restored: outcome.epochs_restored,
            cache: cache.map(|c| c.stats()),
            peak_regs,
            wall_time: start.elapsed(),
            shard_pipeline_time: outcome.pipeline_time,
            telemetry: hub.enabled().then(|| hub.summary()),
        };
        if let Some(dir) = &run_dir {
            dir.write_result(&result)?;
            dir.write_summary(&stats)?;
            // The flight recorder is only written for fully computed runs:
            // reused shards and restored epochs record nothing, so a
            // partial recompute would under-count relative to the
            // determinism contract's byte-identical promise.
            if hub.enabled() && outcome.reused == 0 && outcome.epochs_restored == 0 {
                dir.write_metrics(&hub.metrics())?;
            }
            if hub.spec().trace_enabled() {
                dir.write_trace(&hub.trace_events())?;
            }
        }
        Ok(OrchestratedResult { stats, result })
    }

    /// Resume a persisted run from its manifest alone: complete shards
    /// are loaded, and an interrupted multi-epoch run restarts every
    /// shard from the latest persisted exchange barrier. The merged
    /// result is (re)written and bit-identical to an uninterrupted run of
    /// the same manifest.
    pub fn resume(root: impl Into<PathBuf>) -> Result<OrchestratedResult, PersistError> {
        let root = root.into();
        let manifest = RunDir::read_manifest(&root)?;
        let orchestrator = Orchestrator::new(OrchestratorOptions {
            run_dir: Some(root),
            epochs: manifest.epochs,
            ..OrchestratorOptions::default()
        });
        orchestrator.run(&manifest.config, manifest.shards)
    }

    fn execute(
        &self,
        config: &CampaignConfig,
        specs: &[ShardSpec],
        epochs: usize,
        cache: Option<&Arc<ResultCache>>,
        run_dir: Option<&RunDir>,
        hub: &TelemetryHub,
    ) -> ExecOutcome {
        // External campaigns share one process budget across all shards
        // (the process-pool worker bound); virtual campaigns never
        // allocate one.
        let budget = config
            .backend
            .is_external()
            .then(|| Arc::new(ProcessBudget::new(self.options.process_slots)));
        let budget = budget.as_ref();
        // Shards already complete on disk load without recomputation.
        let outputs: Vec<Option<ShardOutput>> =
            specs.iter().map(|spec| run_dir.and_then(|dir| dir.load_shard(spec))).collect();
        let reused = outputs.iter().filter(|o| o.is_some()).count();

        if reused == specs.len() {
            // Whole-shard reuse, not checkpoint restoration: no barrier
            // checkpoint was read, so `epochs_restored` stays 0.
            return ExecOutcome {
                outputs: outputs.into_iter().map(|o| o.expect("all loaded")).collect(),
                reused,
                computed: 0,
                epochs_restored: 0,
                pipeline_time: Duration::ZERO,
            };
        }
        if epochs <= 1 {
            return self
                .execute_independent(config, specs, outputs, reused, cache, budget, run_dir, hub);
        }
        self.execute_exchanged(config, specs, epochs, cache, budget, run_dir, hub)
    }

    /// The no-exchange path: shards never communicate, so missing shards
    /// recompute individually next to reused ones.
    #[allow(clippy::too_many_arguments)]
    fn execute_independent(
        &self,
        config: &CampaignConfig,
        specs: &[ShardSpec],
        mut outputs: Vec<Option<ShardOutput>>,
        reused: usize,
        cache: Option<&Arc<ResultCache>>,
        budget: Option<&Arc<ProcessBudget>>,
        run_dir: Option<&RunDir>,
        hub: &TelemetryHub,
    ) -> ExecOutcome {
        let pending: Vec<ShardSpec> = specs
            .iter()
            .zip(&outputs)
            .filter(|(_, loaded)| loaded.is_none())
            .map(|(spec, _)| *spec)
            .collect();

        let pool_start = Instant::now();
        let computed = run_indexed(pending.len(), self.options.workers, |task| {
            let spec = pending[task];
            let shard_cache = cache.map(Arc::clone);
            let shard_budget = budget.map(Arc::clone);
            let telemetry = hub.lane(spec.index);
            telemetry.observe(keys::QUEUE_WAIT, pool_start.elapsed());
            let _span = telemetry.span(keys::SPAN_SHARD_RUN);
            match run_dir {
                None => run_shard_instrumented(
                    config,
                    spec,
                    shard_cache,
                    shard_budget,
                    telemetry.clone(),
                    |_| {},
                ),
                Some(dir) => {
                    // Persistence failures on progress lines must not kill
                    // the computation; the summary write decides
                    // completeness.
                    match dir.shard_writer(&spec) {
                        Ok(writer) => {
                            let writer = Mutex::new(writer);
                            let output = run_shard_instrumented(
                                config,
                                spec,
                                shard_cache,
                                shard_budget,
                                telemetry.clone(),
                                |record| {
                                    writer.lock().unwrap().record(record);
                                },
                            );
                            let _ = writer.into_inner().unwrap().finish(&output);
                            output
                        }
                        Err(_) => run_shard_instrumented(
                            config,
                            spec,
                            shard_cache,
                            shard_budget,
                            telemetry.clone(),
                            |_| {},
                        ),
                    }
                }
            }
        });

        let pipeline_time = computed.iter().map(|o| o.pipeline_time).sum();
        let computed_count = computed.len();
        let mut fresh = computed.into_iter();
        for slot in outputs.iter_mut() {
            if slot.is_none() {
                *slot = fresh.next();
            }
        }
        ExecOutcome {
            outputs: outputs.into_iter().map(|o| o.expect("every shard resolved")).collect(),
            reused,
            computed: computed_count,
            epochs_restored: 0,
            pipeline_time,
        }
    }

    /// The exchange path: barriers couple every shard, so all shards run
    /// together — from scratch, or from the latest barrier at which a
    /// persisted run recorded the pool and every shard's checkpoint.
    /// (Per-shard summary reuse is only sound when *all* shards are
    /// complete, which `execute` already handled.)
    #[allow(clippy::too_many_arguments)]
    fn execute_exchanged(
        &self,
        config: &CampaignConfig,
        specs: &[ShardSpec],
        epochs: usize,
        cache: Option<&Arc<ResultCache>>,
        budget: Option<&Arc<ProcessBudget>>,
        run_dir: Option<&RunDir>,
        hub: &TelemetryHub,
    ) -> ExecOutcome {
        let restored_barrier =
            run_dir.and_then(|dir| dir.latest_restorable_epoch(specs.len(), epochs));

        // The cumulative exchange pool, in deterministic merge order.
        let mut pool = SuccessfulSet::new();
        if let (Some(barrier), Some(dir)) = (restored_barrier, run_dir) {
            pool.merge_sources(
                &dir.load_epoch_pool(barrier).expect("validated by latest_restorable_epoch"),
            );
        }

        let runners: Vec<Mutex<ShardSlot>> = specs
            .iter()
            .enumerate()
            .map(|(index, spec)| {
                let shard_cache = cache.map(Arc::clone);
                let mut runner = match (restored_barrier, run_dir) {
                    (Some(barrier), Some(dir)) => {
                        let checkpoint = dir
                            .load_checkpoint(index, barrier)
                            .expect("validated by latest_restorable_epoch");
                        ShardRunner::from_checkpoint(config, *spec, shard_cache, checkpoint)
                    }
                    _ => ShardRunner::new(config, *spec, shard_cache),
                };
                if let Some(budget) = budget {
                    runner = runner.with_process_budget(Arc::clone(budget));
                }
                // Telemetry is never part of checkpoints; (re)attach the
                // shard's lane handle on both the fresh and restored path.
                runner = runner.with_telemetry(hub.lane(index));
                let writer = run_dir.and_then(|dir| dir.shard_writer(spec).ok());
                Mutex::new(ShardSlot { runner, writer })
            })
            .collect();

        let segments: Vec<Vec<usize>> =
            specs.iter().map(|spec| plan_epoch_segments(spec.budget, epochs)).collect();
        let start_epoch = restored_barrier.map_or(0, |barrier| barrier + 1);

        let pool_start = Instant::now();
        run_epochs(
            specs.len(),
            self.options.workers,
            start_epoch..epochs,
            |task, epoch| {
                let telemetry = hub.lane(task);
                telemetry.observe(keys::QUEUE_WAIT, pool_start.elapsed());
                let _span = telemetry.span(keys::SPAN_SHARD_RUN);
                let mut slot = runners[task].lock().unwrap();
                let ShardSlot { runner, writer } = &mut *slot;
                runner.run_segment(segments[task][epoch], |record| {
                    if let Some(writer) = writer {
                        writer.record(record);
                    }
                })
            },
            |epoch, deltas| {
                let _span = hub.lane(specs.len()).span(keys::SPAN_EXCHANGE);
                // Merge the epoch's deltas in shard-index order (the pool
                // deduplicates structurally), persist the barrier, then
                // broadcast the merged pool back into every shard.
                for delta in &deltas {
                    pool.merge_sources(delta);
                }
                let snapshot = pool.sources().to_vec();
                if let Some(dir) = run_dir {
                    let _ = dir.write_epoch_pool(epoch, &snapshot);
                }
                for (index, slot) in runners.iter().enumerate() {
                    let mut slot = slot.lock().unwrap();
                    slot.runner.inject(&snapshot);
                    if let Some(dir) = run_dir {
                        let _ = dir.write_checkpoint(index, epoch, &slot.runner.checkpoint());
                    }
                }
            },
        );

        let mut pipeline_time = Duration::ZERO;
        let outputs: Vec<ShardOutput> = runners
            .into_iter()
            .map(|slot| {
                let ShardSlot { runner, writer } = slot.into_inner().unwrap();
                let output = runner.finish();
                if let Some(writer) = writer {
                    let _ = writer.finish(&output);
                }
                pipeline_time += output.pipeline_time;
                output
            })
            .collect();
        ExecOutcome {
            reused: 0,
            computed: outputs.len(),
            epochs_restored: start_epoch,
            pipeline_time,
            outputs,
        }
    }
}

/// One shard's live state on the exchange path: the paused runner plus
/// its (optional) streaming progress writer.
struct ShardSlot {
    runner: ShardRunner,
    writer: Option<ShardWriter>,
}

struct ExecOutcome {
    outputs: Vec<ShardOutput>,
    reused: usize,
    computed: usize,
    epochs_restored: usize,
    pipeline_time: Duration,
}

/// Compare an orchestrated run against the sequential driver (used by
/// tests and kept public for doc examples / sanity scripts).
pub fn matches_sequential(config: &CampaignConfig) -> bool {
    let orchestrated = Orchestrator::run_sharded(config, 1);
    let sequential = Campaign::new(config.clone()).run();
    orchestrated.records == sequential.records
        && orchestrated.sources == sequential.sources
        && orchestrated.successful_sources == sequential.successful_sources
        && orchestrated.aggregates == sequential.aggregates
}
