//! The campaign orchestrator: sharded execution on a worker pool, with
//! optional result caching and persistent, resumable run directories.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use llm4fp::{Campaign, CampaignConfig, CampaignResult};
use llm4fp_difftest::{CacheStats, ResultCache};

use crate::persist::{PersistError, RunDir, RunManifest};
use crate::pool::run_indexed;
use crate::shard::{merge_shards, plan_shards, run_shard, ShardOutput, ShardSpec};

/// How an orchestrated run executes.
#[derive(Debug, Clone)]
pub struct OrchestratorOptions {
    /// Worker threads for shard execution (shards themselves also
    /// parallelize their difftest matrix with `config.threads` workers).
    /// Defaults to the machine's available parallelism.
    pub workers: usize,
    /// Share a differential-testing result cache across shards.
    pub cache: bool,
    /// Persist the run (config, per-program progress, shard outputs,
    /// merged result) into this directory, and resume from any complete
    /// shards already present.
    pub run_dir: Option<PathBuf>,
}

impl Default for OrchestratorOptions {
    fn default() -> Self {
        OrchestratorOptions { workers: default_workers(), cache: true, run_dir: None }
    }
}

/// The machine's available parallelism (1 when unknown).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Execution statistics of one orchestrated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Number of shards in the plan.
    pub shards: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Shards loaded from a persisted run directory instead of computed.
    pub shards_reused: usize,
    /// Shards computed this run.
    pub shards_computed: usize,
    /// Result-cache statistics (`None` when caching was off).
    pub cache: Option<CacheStats>,
    /// Wall-clock duration of the orchestrated run.
    pub wall_time: Duration,
    /// Sum of the computed shards' pipeline times (the work the pool
    /// actually performed; `wall_time` approaches this divided by the
    /// effective worker count).
    pub shard_pipeline_time: Duration,
}

/// A merged campaign result plus how it was produced.
#[derive(Debug, Clone)]
pub struct OrchestratedResult {
    pub result: CampaignResult,
    pub stats: RunStats,
}

/// Drives sharded campaign runs. See the crate docs for the determinism
/// contract: results are a pure function of `(config, shard count)`.
#[derive(Debug, Clone, Default)]
pub struct Orchestrator {
    options: OrchestratorOptions,
}

impl Orchestrator {
    pub fn new(options: OrchestratorOptions) -> Self {
        Orchestrator { options }
    }

    pub fn options(&self) -> &OrchestratorOptions {
        &self.options
    }

    /// Convenience entry point: run `config` split into `shards` shards on
    /// the default worker pool with caching enabled, returning just the
    /// campaign result. Bit-deterministic across worker counts; for
    /// `shards == 1` the result matches [`Campaign::run`] exactly.
    pub fn run_sharded(config: &CampaignConfig, shards: usize) -> CampaignResult {
        Orchestrator::default()
            .run(config, shards)
            .expect("in-memory orchestrated run cannot fail")
            .result
    }

    /// Run one campaign decomposed into `shards` shards. Only persistence
    /// problems error; a memory-only run always succeeds.
    pub fn run(
        &self,
        config: &CampaignConfig,
        shards: usize,
    ) -> Result<OrchestratedResult, PersistError> {
        let start = Instant::now();
        let specs = plan_shards(config, shards);
        let cache = self.options.cache.then(|| Arc::new(ResultCache::new()));
        let run_dir = match &self.options.run_dir {
            Some(root) => Some(RunDir::open(
                root,
                &RunManifest { config: config.clone(), shards: specs.len() },
            )?),
            None => None,
        };
        let outcome = self.execute(config, &specs, cache.as_ref(), run_dir.as_ref());
        let result = merge_shards(config, outcome.outputs, start.elapsed());
        if let Some(dir) = &run_dir {
            dir.write_result(&result)?;
        }
        Ok(OrchestratedResult {
            stats: RunStats {
                shards: specs.len(),
                workers: self.options.workers.max(1),
                shards_reused: outcome.reused,
                shards_computed: outcome.computed,
                cache: cache.map(|c| c.stats()),
                wall_time: start.elapsed(),
                shard_pipeline_time: outcome.pipeline_time,
            },
            result,
        })
    }

    /// Resume a persisted run from its manifest alone: complete shards are
    /// loaded, incomplete ones recomputed, and the merged result is
    /// (re)written. Produces bit-identical results to an uninterrupted
    /// run of the same manifest.
    pub fn resume(root: impl Into<PathBuf>) -> Result<OrchestratedResult, PersistError> {
        let root = root.into();
        let manifest = RunDir::read_manifest(&root)?;
        let orchestrator = Orchestrator::new(OrchestratorOptions {
            run_dir: Some(root),
            ..OrchestratorOptions::default()
        });
        orchestrator.run(&manifest.config, manifest.shards)
    }

    fn execute(
        &self,
        config: &CampaignConfig,
        specs: &[ShardSpec],
        cache: Option<&Arc<ResultCache>>,
        run_dir: Option<&RunDir>,
    ) -> ExecOutcome {
        // Partition into shards already on disk and shards to compute.
        let mut outputs: Vec<Option<ShardOutput>> =
            specs.iter().map(|spec| run_dir.and_then(|dir| dir.load_shard(spec))).collect();
        let reused = outputs.iter().filter(|o| o.is_some()).count();
        let pending: Vec<ShardSpec> = specs
            .iter()
            .zip(&outputs)
            .filter(|(_, loaded)| loaded.is_none())
            .map(|(spec, _)| *spec)
            .collect();

        let computed = run_indexed(pending.len(), self.options.workers, |task| {
            let spec = pending[task];
            let shard_cache = cache.map(Arc::clone);
            match run_dir {
                None => run_shard(config, spec, shard_cache, |_| {}),
                Some(dir) => {
                    // Persistence failures on progress lines must not kill
                    // the computation; the summary write decides
                    // completeness.
                    match dir.shard_writer(&spec) {
                        Ok(writer) => {
                            let writer = Mutex::new(writer);
                            let output = run_shard(config, spec, shard_cache, |record| {
                                writer.lock().unwrap().record(record);
                            });
                            let _ = writer.into_inner().unwrap().finish(&output);
                            output
                        }
                        Err(_) => run_shard(config, spec, shard_cache, |_| {}),
                    }
                }
            }
        });

        let pipeline_time = computed.iter().map(|o| o.pipeline_time).sum();
        let computed_count = computed.len();
        let mut fresh = computed.into_iter();
        for slot in outputs.iter_mut() {
            if slot.is_none() {
                *slot = fresh.next();
            }
        }
        ExecOutcome {
            outputs: outputs.into_iter().map(|o| o.expect("every shard resolved")).collect(),
            reused,
            computed: computed_count,
            pipeline_time,
        }
    }
}

struct ExecOutcome {
    outputs: Vec<ShardOutput>,
    reused: usize,
    computed: usize,
    pipeline_time: Duration,
}

/// Compare an orchestrated run against the sequential driver (used by
/// tests and kept public for doc examples / sanity scripts).
pub fn matches_sequential(config: &CampaignConfig) -> bool {
    let orchestrated = Orchestrator::run_sharded(config, 1);
    let sequential = Campaign::new(config.clone()).run();
    orchestrated.records == sequential.records
        && orchestrated.sources == sequential.sources
        && orchestrated.successful_sources == sequential.successful_sources
        && orchestrated.aggregates == sequential.aggregates
}
