//! The campaign orchestrator: sharded execution behind a pluggable
//! [`ShardExecutor`] transport, with optional epoch-based cross-shard
//! feedback exchange, result caching and persistent, resumable run
//! directories.
//!
//! ## One builder, any transport
//!
//! The public API is a single builder:
//!
//! ```ignore
//! let outcome = Orchestrator::new(config)
//!     .shards(4)
//!     .epochs(2)
//!     .executor(Arc::new(ProcessPoolExecutor::new(4)))
//!     .run()?;
//! ```
//!
//! Planning (shard decomposition, epoch barriers, delta merging,
//! persistence, telemetry) lives here and is shared by every transport;
//! only the mechanics of running a segment differ between
//! [`InProcessExecutor`] (the default) and out-of-process executors.
//!
//! ## Cross-shard feedback exchange
//!
//! A plain sharded run keeps each shard's successful set private, so at
//! `K` shards Feedback-Based Mutation draws from ~1/K of the campaign's
//! findings. With `epochs = E > 1` every shard runs its budget in `E`
//! segments; after each segment the shards synchronize at a deterministic
//! barrier where their newly found successful sources (the *deltas*) are
//! merged in shard-index order into a global pool — structurally
//! deduplicated with the same hashing as the per-shard sets — and the
//! merged pool is broadcast back, so every shard's feedback mutation
//! draws from the union in the next epoch.
//!
//! The determinism contract extends to `(config, K, E)`: barrier order is
//! fixed by shard index (never completion order), so results stay
//! bit-identical across worker counts *and transports*, and `E = 1` runs
//! the exact no-exchange code path. Persisted multi-epoch runs record the
//! pool and every shard's paused checkpoint at each barrier, so a killed
//! campaign resumes mid-run from the latest complete barrier and still
//! reproduces the uninterrupted result bit for bit.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use llm4fp::{Campaign, CampaignConfig, CampaignResult, ProgramRecord, SuccessfulSet};
use llm4fp_difftest::{CacheStats, ProcessBudget, ResultCache};
use llm4fp_telemetry::{keys, TelemetryHub, TelemetrySpec, TelemetrySummary};

use crate::executor::{InProcessExecutor, OrchestratorError, RecordSink, ShardExecutor, ShardTask};
use crate::faults::PersistFault;
use crate::persist::{RunDir, RunManifest, ShardWriter};
use crate::shard::{
    merge_shards, plan_epoch_segments, plan_shards, ShardFailureReport, ShardOutput, ShardSpec,
};

/// How an orchestrated run executes.
#[derive(Debug, Clone)]
pub struct OrchestratorOptions {
    /// Worker threads for shard execution (shards themselves also
    /// parallelize their difftest matrix with `config.threads` workers).
    /// Defaults to the machine's available parallelism. `0` is rejected
    /// with [`OrchestratorError::InvalidWorkers`] at run time.
    pub workers: usize,
    /// Share a differential-testing result cache across shards (only
    /// consulted by executors whose
    /// [`shares_cache`](ShardExecutor::shares_cache) is true).
    pub cache: bool,
    /// Feedback-exchange epochs. `1` (the default) disables exchange and
    /// reproduces the independent-shard output exactly; `E > 1` slices
    /// every shard's budget into `E` segments with a merge-and-broadcast
    /// barrier between consecutive segments.
    pub epochs: usize,
    /// The process-pool bound for external-backend campaigns: at most
    /// this many shards spawn compiler/binary processes concurrently,
    /// **separately** from the thread pool — a mixed virtual/real suite
    /// keeps its virtual shards saturating `workers` threads on the
    /// sealed VM while the external shards throttle their spawns.
    /// Throttling changes wall-clock interleaving only; recorded results
    /// and merge order are unaffected. Defaults to the machine's
    /// available parallelism; ignored by virtual campaigns.
    pub process_slots: usize,
    /// Persist the run (config, per-program progress, epoch barriers,
    /// shard outputs, merged result) into this directory, and resume from
    /// whatever complete state is already present.
    pub run_dir: Option<PathBuf>,
    /// Telemetry collection for this run (off by default — the disabled
    /// path costs one branch per call site). With `metrics` on, persisted
    /// runs also write the deterministic `metrics.json` flight recorder;
    /// with `trace` on, a Chrome `trace_event`-compatible `trace.jsonl`.
    /// Collection is pure observation: results are bit-identical with
    /// telemetry on or off.
    pub telemetry: TelemetrySpec,
    /// The graceful-degradation rung: when the configured transport's
    /// workers cannot be (re)spawned at all
    /// ([`OrchestratorError::WorkerUnavailable`]), rerun the campaign on
    /// the [`InProcessExecutor`] instead of failing. Sound because every
    /// transport is pinned bit-identical — the degraded run's results
    /// are *unchanged*, only slower/less isolated. Off by default (an
    /// unavailable transport is then a hard error), and recorded in
    /// [`RunStats::fell_back_to_in_process`] when it triggers.
    pub fallback_to_in_process: bool,
    /// Deterministic persistence faults for chaos testing (see
    /// [`PersistFault`]); empty outside tests.
    pub persist_faults: Vec<PersistFault>,
}

impl Default for OrchestratorOptions {
    fn default() -> Self {
        OrchestratorOptions {
            workers: default_workers(),
            cache: true,
            epochs: 1,
            process_slots: default_workers(),
            run_dir: None,
            telemetry: TelemetrySpec::OFF,
            fallback_to_in_process: false,
            persist_faults: Vec::new(),
        }
    }
}

/// The machine's available parallelism (1 when unknown).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Execution statistics of one orchestrated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of shards in the plan.
    pub shards: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Feedback-exchange epochs the plan was sliced into.
    pub epochs: usize,
    /// Shards loaded from a persisted run directory instead of computed.
    pub shards_reused: usize,
    /// Shards computed this run.
    pub shards_computed: usize,
    /// Epochs skipped by restoring persisted barrier checkpoints instead
    /// of recomputing them (multi-epoch resume).
    pub epochs_restored: usize,
    /// Result-cache statistics (`None` when caching was off, or when the
    /// executor runs its shards out of process and never consults the
    /// coordinator's cache).
    pub cache: Option<CacheStats>,
    /// Largest VM register file any shard's reused execution scratch
    /// prepared during this run — a readout of the seal-time register
    /// coalescing. `None` when no shard reported one (all shards reused
    /// from a pre-optimizer run dir); telemetry only, never part of the
    /// determinism contract (resumed shards count only their recomputed
    /// segment).
    pub peak_regs: Option<usize>,
    /// Wall-clock duration of the orchestrated run.
    pub wall_time: Duration,
    /// Sum of the computed shards' pipeline times (the work the pool
    /// actually performed; `wall_time` approaches this divided by the
    /// effective worker count).
    pub shard_pipeline_time: Duration,
    /// Telemetry roll-up (`None` when telemetry was off). Counter-derived
    /// fields are deterministic for fully computed runs; the time fields
    /// describe only work computed in *this* invocation.
    pub telemetry: Option<TelemetrySummary>,
    /// Shards the quarantine policy retired after exhausting their
    /// dispatch budget, with attempt counts and last errors. Empty on
    /// healthy runs and always empty under the default Abort policy
    /// (which errors out instead). Supervision bookkeeping, not campaign
    /// telemetry — it describes this invocation's luck, never the
    /// deterministic `(config, K, E)` result.
    pub failures: Vec<ShardFailureReport>,
    /// Best-effort persistence writes this run dropped (shard progress
    /// lines, barrier artifacts). `0` on healthy runs; dropped lines only
    /// cost recompute-on-resume, never results.
    pub persist_errors: u64,
    /// Whether the configured transport was unavailable and the run
    /// completed on the in-process fallback instead (see
    /// [`OrchestratorOptions::fallback_to_in_process`]).
    pub fell_back_to_in_process: bool,
}

impl RunStats {
    /// One-line human-readable summary, including the result-cache hit
    /// rate (the JSONL run directory persists the same data as
    /// `summary.json`).
    pub fn summary_line(&self) -> String {
        let cache = match &self.cache {
            Some(c) => format!(
                "cache {}/{} hits ({:.1}%)",
                c.hits,
                c.hits + c.misses,
                100.0 * c.hit_rate()
            ),
            None => "cache off".to_string(),
        };
        let peak = match self.peak_regs {
            Some(regs) => format!(", peak register file {regs}"),
            None => String::new(),
        };
        let telemetry = match &self.telemetry {
            Some(t) => format!(
                ", telemetry: {} keys, {} fallback(s), {:.2}s seal / {:.2}s exec",
                t.counter_keys,
                t.interpreter_fallbacks,
                t.seal_time.as_secs_f64(),
                t.exec_time.as_secs_f64()
            ),
            None => String::new(),
        };
        let health = {
            let mut parts = String::new();
            if !self.failures.is_empty() {
                parts.push_str(&format!(", {} shard(s) quarantined", self.failures.len()));
            }
            if self.persist_errors > 0 {
                parts.push_str(&format!(", {} persist error(s)", self.persist_errors));
            }
            if self.fell_back_to_in_process {
                parts.push_str(", fell back to in-process");
            }
            parts
        };
        format!(
            "{} shard(s) x {} epoch(s) on {} worker(s), {} reused, \
             {:.2}s wall ({:.2}s shard time), {}{}{}{}",
            self.shards,
            self.epochs,
            self.workers,
            self.shards_reused,
            self.wall_time.as_secs_f64(),
            self.shard_pipeline_time.as_secs_f64(),
            cache,
            peak,
            telemetry,
            health
        )
    }
}

/// A merged campaign result plus how it was produced.
#[derive(Debug, Clone)]
pub struct OrchestratedResult {
    pub result: CampaignResult,
    pub stats: RunStats,
}

/// The orchestrated-run builder. Configure a campaign's decomposition and
/// transport, then [`run`](Orchestrator::run) it:
///
/// ```ignore
/// let outcome = Orchestrator::new(config).shards(4).epochs(2).run()?;
/// ```
///
/// See the crate docs for the determinism contract: results are a pure
/// function of `(config, shard count, epoch count)` — never of the
/// worker count, the transport, or crash/redispatch schedules.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    config: CampaignConfig,
    shards: usize,
    options: OrchestratorOptions,
    executor: Option<Arc<dyn ShardExecutor>>,
}

impl Orchestrator {
    /// A builder for one campaign with default options: one shard, one
    /// epoch, default worker pool, caching on, in-process execution.
    pub fn new(config: CampaignConfig) -> Self {
        Orchestrator { config, shards: 1, options: OrchestratorOptions::default(), executor: None }
    }

    /// Decompose the campaign into `shards` shards (clamped to the
    /// program budget at planning time).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Slice every shard's budget into `epochs` feedback-exchange epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.options.epochs = epochs;
        self
    }

    /// Worker threads for the default in-process executor (`0` errors at
    /// run time with [`OrchestratorError::InvalidWorkers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.options.workers = workers;
        self
    }

    /// Toggle the shared differential-testing result cache.
    pub fn cache(mut self, cache: bool) -> Self {
        self.options.cache = cache;
        self
    }

    /// External-process concurrency bound (see
    /// [`OrchestratorOptions::process_slots`]).
    pub fn process_slots(mut self, slots: usize) -> Self {
        self.options.process_slots = slots;
        self
    }

    /// Persist into (and resume from) this run directory.
    pub fn run_dir(mut self, root: impl Into<PathBuf>) -> Self {
        self.options.run_dir = Some(root.into());
        self
    }

    /// Telemetry collection for this run.
    pub fn telemetry(mut self, spec: TelemetrySpec) -> Self {
        self.options.telemetry = spec;
        self
    }

    /// The graceful-degradation rung: rerun on the in-process executor
    /// (with unchanged results — transports are pinned bit-identical) if
    /// the configured transport's workers cannot be spawned at all. See
    /// [`OrchestratorOptions::fallback_to_in_process`].
    pub fn fallback_to_in_process(mut self, fallback: bool) -> Self {
        self.options.fallback_to_in_process = fallback;
        self
    }

    /// Arm deterministic persistence faults for chaos testing (see
    /// [`PersistFault`] — worker faults are armed on the executor via
    /// [`crate::ProcessPoolExecutor::with_fault_plan`]).
    pub fn persist_faults(mut self, faults: Vec<PersistFault>) -> Self {
        self.options.persist_faults = faults;
        self
    }

    /// Replace the whole options bag at once (existing call sites that
    /// assemble an [`OrchestratorOptions`] keep working unchanged).
    pub fn options(mut self, options: OrchestratorOptions) -> Self {
        self.options = options;
        self
    }

    /// Execute shard segments through this transport instead of the
    /// default [`InProcessExecutor`]. The merged result is bit-identical
    /// for any executor — only wall-clock behavior and cache statistics
    /// differ.
    pub fn executor(mut self, executor: Arc<dyn ShardExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Run the configured campaign: plan shards, drive the executor's
    /// session through the epoch-barrier protocol, merge outputs, and
    /// persist (if a run directory is set).
    pub fn run(self) -> Result<OrchestratedResult, OrchestratorError> {
        let Orchestrator { config, shards, options, executor } = self;
        if options.workers == 0 {
            return Err(OrchestratorError::InvalidWorkers);
        }
        let start = Instant::now();
        let specs = plan_shards(&config, shards);
        let epochs = options.epochs.max(1);
        let mut executor: Arc<dyn ShardExecutor> =
            executor.unwrap_or_else(|| Arc::new(InProcessExecutor::new(options.workers)));
        let run_dir = match &options.run_dir {
            Some(root) => Some(
                RunDir::open(root, &RunManifest::new(config.clone(), specs.len(), epochs))?
                    .with_persist_faults(&options.persist_faults),
            ),
            None => None,
        };
        let hub = TelemetryHub::new(options.telemetry);
        let mut fell_back = false;
        let (outcome, cache) = loop {
            // Cache statistics only make sense when the transport actually
            // consults the coordinator's cache handles.
            let cache =
                (options.cache && executor.shares_cache()).then(|| Arc::new(ResultCache::new()));
            let attempt = {
                // The orchestrator's own lane sits past every shard lane.
                let _run = hub.lane(specs.len()).span(keys::SPAN_RUN);
                execute(
                    &config,
                    &specs,
                    epochs,
                    &options,
                    executor.as_ref(),
                    cache.as_ref(),
                    run_dir.as_ref(),
                    &hub,
                )
            };
            match attempt {
                Ok(outcome) => break (outcome, cache),
                // The degradation ladder: a transport whose workers can't
                // even be spawned reruns in process with unchanged results
                // (anything the dead attempt persisted — sealed shards,
                // barrier files — is picked right back up by resume).
                Err(OrchestratorError::WorkerUnavailable(why))
                    if options.fallback_to_in_process && !fell_back =>
                {
                    eprintln!(
                        "llm4fp-orchestrator: worker transport unavailable ({why}); \
                         falling back to in-process execution"
                    );
                    executor = Arc::new(InProcessExecutor::new(options.workers));
                    fell_back = true;
                }
                Err(e) => return Err(e),
            }
        };
        let peak_regs = outcome.outputs.iter().filter_map(|o| o.peak_regs).max();
        let result = merge_shards(&config, outcome.outputs, start.elapsed());
        let fully_computed = outcome.reused == 0 && outcome.epochs_restored == 0;
        let stats = RunStats {
            shards: specs.len(),
            workers: options.workers,
            epochs,
            shards_reused: outcome.reused,
            shards_computed: outcome.computed,
            epochs_restored: outcome.epochs_restored,
            cache: cache.map(|c| c.stats()),
            peak_regs,
            wall_time: start.elapsed(),
            shard_pipeline_time: outcome.pipeline_time,
            telemetry: hub.enabled().then(|| hub.summary()),
            failures: outcome.failures,
            persist_errors: run_dir.as_ref().map_or(0, |dir| dir.persist_errors()),
            fell_back_to_in_process: fell_back,
        };
        if let Some(dir) = &run_dir {
            dir.write_result(&result)?;
            dir.write_summary(&stats)?;
            // The flight recorder is only written for fully computed runs
            // with no quarantined shards: reused shards, restored epochs
            // and quarantined shards record nothing (or only part), so a
            // partial recompute would under-count relative to the
            // determinism contract's byte-identical promise.
            if hub.enabled() && fully_computed && stats.failures.is_empty() {
                dir.write_metrics(&hub.metrics())?;
            }
            if hub.spec().trace_enabled() {
                dir.write_trace(&hub.trace_events())?;
            }
        }
        Ok(OrchestratedResult { stats, result })
    }

    /// Resume a persisted run from its manifest alone: complete shards
    /// are loaded, and an interrupted multi-epoch run restarts every
    /// shard from the latest persisted exchange barrier. The merged
    /// result is (re)written and bit-identical to an uninterrupted run of
    /// the same manifest.
    pub fn resume(root: impl Into<PathBuf>) -> Result<OrchestratedResult, OrchestratorError> {
        let root = root.into();
        let manifest = RunDir::read_manifest(&root)?;
        Orchestrator::new(manifest.config.clone())
            .shards(manifest.shards)
            .epochs(manifest.epochs)
            .run_dir(root)
            .run()
    }

    /// Deprecated convenience entry point: run `config` split into
    /// `shards` shards with default options, returning just the campaign
    /// result.
    #[deprecated(since = "0.3.0", note = "use `Orchestrator::new(config).shards(k).run()`")]
    pub fn run_sharded(config: &CampaignConfig, shards: usize) -> CampaignResult {
        Orchestrator::new(config.clone())
            .shards(shards)
            .run()
            .expect("in-memory orchestrated run cannot fail")
            .result
    }

    /// Deprecated convenience entry point: like `run_sharded`, with
    /// `epochs` cross-shard feedback-exchange epochs.
    #[deprecated(
        since = "0.3.0",
        note = "use `Orchestrator::new(config).shards(k).epochs(e).run()`"
    )]
    pub fn run_sharded_epochs(
        config: &CampaignConfig,
        shards: usize,
        epochs: usize,
    ) -> CampaignResult {
        Orchestrator::new(config.clone())
            .shards(shards)
            .epochs(epochs)
            .run()
            .expect("in-memory orchestrated run cannot fail")
            .result
    }
}

/// The unified execution engine shared by every transport: load reusable
/// shard outputs, build [`ShardTask`]s for the rest, and drive the
/// executor's session through the epoch-barrier protocol.
#[allow(clippy::too_many_arguments)]
fn execute(
    config: &CampaignConfig,
    specs: &[ShardSpec],
    epochs: usize,
    options: &OrchestratorOptions,
    executor: &dyn ShardExecutor,
    cache: Option<&Arc<ResultCache>>,
    run_dir: Option<&RunDir>,
    hub: &TelemetryHub,
) -> Result<ExecOutcome, OrchestratorError> {
    // External campaigns share one process budget across all in-process
    // shards (out-of-process workers rebuild their own from
    // `process_slots`); virtual campaigns never allocate one.
    let budget =
        config.backend.is_external().then(|| Arc::new(ProcessBudget::new(options.process_slots)));
    // Shards already complete on disk load without recomputation.
    let mut loaded: Vec<Option<ShardOutput>> =
        specs.iter().map(|spec| run_dir.and_then(|dir| dir.load_shard(spec))).collect();
    let mut reused = loaded.iter().filter(|o| o.is_some()).count();
    if reused == specs.len() {
        // Whole-shard reuse, not checkpoint restoration: no barrier
        // checkpoint was read, so `epochs_restored` stays 0.
        return Ok(ExecOutcome {
            outputs: loaded.into_iter().map(|o| o.expect("all loaded")).collect(),
            reused,
            computed: 0,
            epochs_restored: 0,
            pipeline_time: Duration::ZERO,
            failures: Vec::new(),
        });
    }
    // Exchange barriers couple every shard, so per-shard reuse is only
    // sound without exchange (or when *all* shards were complete, which
    // returned above). Multi-epoch runs instead restart every shard from
    // the latest barrier at which the pool and all checkpoints persisted.
    let restored_barrier = if epochs > 1 {
        loaded = specs.iter().map(|_| None).collect();
        reused = 0;
        run_dir.and_then(|dir| dir.latest_restorable_epoch(specs.len(), epochs))
    } else {
        None
    };
    let task_specs: Vec<ShardSpec> = specs
        .iter()
        .zip(&loaded)
        .filter(|(_, loaded)| loaded.is_none())
        .map(|(spec, _)| *spec)
        .collect();

    // The cumulative exchange pool, in deterministic merge order.
    let mut pool = SuccessfulSet::new();
    if let (Some(barrier), Some(dir)) = (restored_barrier, run_dir) {
        pool.merge_sources(
            &dir.load_epoch_pool(barrier).expect("validated by latest_restorable_epoch"),
        );
    }

    let tasks: Vec<ShardTask> = task_specs
        .iter()
        .map(|spec| ShardTask {
            config: config.clone(),
            spec: *spec,
            cache: cache.map(Arc::clone),
            budget: budget.clone(),
            process_slots: options.process_slots,
            // Telemetry is never part of checkpoints; the task's lane
            // handle covers both the fresh and the restored path.
            telemetry: hub.lane(spec.index),
            checkpoint: restored_barrier.map(|barrier| {
                run_dir
                    .expect("a restored barrier implies a run dir")
                    .load_checkpoint(spec.index, barrier)
                    .expect("validated by latest_restorable_epoch")
            }),
        })
        .collect();

    let sink = WriterSink::new(run_dir, &task_specs, hub);
    let mut session = executor.begin(tasks, &sink)?;
    let segments: Vec<Vec<usize>> =
        task_specs.iter().map(|spec| plan_epoch_segments(spec.budget, epochs)).collect();
    let start_epoch = restored_barrier.map_or(0, |barrier| barrier + 1);

    for epoch in start_epoch..epochs {
        let last = epoch + 1 == epochs;
        let plan: Vec<usize> = segments.iter().map(|segments| segments[epoch]).collect();
        let deltas = session.run_epoch(&plan, last)?;
        if last {
            break;
        }
        let _span = hub.lane(specs.len()).span(keys::SPAN_EXCHANGE);
        // Merge the epoch's deltas in shard-index order (the pool
        // deduplicates structurally), persist the barrier, then
        // broadcast the merged pool back into every shard.
        for delta in &deltas {
            pool.merge_sources(delta);
        }
        let snapshot = pool.sources().to_vec();
        if let Some(dir) = run_dir {
            // Barrier artifacts are best-effort (a missing one only costs
            // recompute on resume) — but never silently so.
            if dir.write_epoch_pool(epoch, &snapshot).is_err() {
                dir.note_persist_error();
            }
        }
        let broadcast: Vec<&[String]> = task_specs.iter().map(|_| snapshot.as_slice()).collect();
        session.inject(&broadcast)?;
        if let Some(dir) = run_dir {
            // Checkpoints are taken after injection, mirroring the
            // runner-side checkpoint-after-inject order. Quarantined
            // shards have no live barrier state (`None`) and persist
            // nothing.
            for (spec, checkpoint) in task_specs.iter().zip(session.checkpoints()?) {
                let Some(checkpoint) = checkpoint else { continue };
                if dir.write_checkpoint(spec.index, epoch, &checkpoint).is_err() {
                    dir.note_persist_error();
                }
            }
        }
    }

    let session_outcome = session.finish()?;
    let mut failures = Vec::new();
    let mut fresh: Vec<Option<ShardOutput>> = Vec::with_capacity(session_outcome.shards.len());
    for shard in session_outcome.shards {
        match shard {
            Ok(output) => fresh.push(Some(output)),
            Err(report) => {
                failures.push(report);
                fresh.push(None);
            }
        }
    }
    let pipeline_time = fresh.iter().flatten().map(|o| o.pipeline_time).sum();
    let computed = fresh.iter().filter(|o| o.is_some()).count();
    let mut fresh = fresh.into_iter();
    for slot in loaded.iter_mut() {
        if slot.is_none() {
            *slot = fresh.next().expect("one session result per planned task");
        }
    }
    // Quarantined shards contribute nothing to the merge; a run where
    // *nothing* survived has no result to report at all.
    let outputs: Vec<ShardOutput> = loaded.into_iter().flatten().collect();
    if outputs.is_empty() && !failures.is_empty() {
        return Err(OrchestratorError::Executor(format!(
            "every shard was quarantined ({} failure(s)); last: {}",
            failures.len(),
            failures.last().map(|f| f.last_error.as_str()).unwrap_or("unknown")
        )));
    }
    Ok(ExecOutcome {
        outputs,
        reused,
        computed,
        epochs_restored: start_epoch,
        pipeline_time,
        failures,
    })
}

/// The orchestrator's [`RecordSink`]: streams per-program progress lines
/// into the run directory's shard files as they happen, and seals each
/// file when the shard completes. Persistence failures on progress lines
/// never kill the computation — the summary write decides completeness.
struct WriterSink {
    writers: Vec<Mutex<Option<ShardWriter>>>,
}

impl WriterSink {
    fn new(run_dir: Option<&RunDir>, specs: &[ShardSpec], hub: &TelemetryHub) -> Self {
        WriterSink {
            writers: specs
                .iter()
                .map(|spec| {
                    Mutex::new(run_dir.and_then(|dir| {
                        // Dropped lines count into the shard's own lane,
                        // so the keyed ids match across transports.
                        dir.shard_writer(spec, hub.lane(spec.index)).ok()
                    }))
                })
                .collect(),
        }
    }
}

impl RecordSink for WriterSink {
    fn record(&self, task: usize, record: &ProgramRecord) {
        if let Some(writer) = self.writers[task].lock().unwrap().as_mut() {
            writer.record(record);
        }
    }

    fn complete(&self, task: usize, output: &ShardOutput) {
        if let Some(writer) = self.writers[task].lock().unwrap().take() {
            let _ = writer.finish(output);
        }
    }
}

struct ExecOutcome {
    outputs: Vec<ShardOutput>,
    reused: usize,
    computed: usize,
    epochs_restored: usize,
    pipeline_time: Duration,
    /// Per-shard quarantine reports (empty unless the executor ran with
    /// the Quarantine failure policy and shards actually failed).
    failures: Vec<ShardFailureReport>,
}

/// Compare an orchestrated run against the sequential driver (used by
/// tests and kept public for doc examples / sanity scripts).
pub fn matches_sequential(config: &CampaignConfig) -> bool {
    let orchestrated = Orchestrator::new(config.clone())
        .run()
        .expect("in-memory orchestrated run cannot fail")
        .result;
    let sequential = Campaign::new(config.clone()).run();
    orchestrated.records == sequential.records
        && orchestrated.sources == sequential.sources
        && orchestrated.successful_sources == sequential.successful_sources
        && orchestrated.aggregates == sequential.aggregates
}
