//! A minimal work-stealing pool for shard-sized tasks.
//!
//! Tasks are identified by index; workers pull the next index from a
//! shared atomic counter and write results into their slot. Placement by
//! index (not completion order) is what keeps downstream merges
//! deterministic regardless of the worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::executor::OrchestratorError;

/// Run `tasks` closures (`f(0) .. f(tasks - 1)`) on up to `workers`
/// threads and return their results ordered by task index. A panicking
/// task propagates the panic to the caller once the scope joins.
pub fn run_indexed<T, F>(tasks: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(tasks.max(1));
    if workers <= 1 {
        return (0..tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= tasks {
                    break;
                }
                let result = f(index);
                *slots[index].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
                .expect("pool: every task index must produce a result")
        })
        .collect()
}

/// Epoch-synchronized execution: run every task's segment for one epoch
/// on the pool, then hand the per-task results — in task order, never
/// completion order — to `exchange` before the next epoch starts.
///
/// This is the deterministic barrier protocol of cross-shard feedback
/// exchange. The barrier is the join of [`run_indexed`]: no task enters
/// epoch `e + 1` until every task finished epoch `e` and `exchange(e, ..)`
/// returned. Because segment results arrive indexed and the exchange runs
/// single-threaded between epochs, the whole schedule is a pure function
/// of `(tasks, epochs)` — worker count only changes wall-clock time.
/// `exchange` is not called after the final epoch (there is no next
/// segment to feed).
///
/// `workers == 0` is a configuration error, not a silent clamp: it
/// returns [`OrchestratorError::InvalidWorkers`] so a zero threaded
/// through from a public option surfaces instead of degrading to
/// single-threaded execution nobody asked for. ([`run_indexed`] keeps
/// clamping — it is the low-level primitive internal callers feed
/// already validated counts.)
pub fn run_epochs<D, F, B>(
    tasks: usize,
    workers: usize,
    epochs: std::ops::Range<usize>,
    f: F,
    mut exchange: B,
) -> Result<(), OrchestratorError>
where
    D: Send,
    F: Fn(usize, usize) -> D + Sync,
    B: FnMut(usize, Vec<D>),
{
    if workers == 0 {
        return Err(OrchestratorError::InvalidWorkers);
    }
    for epoch in epochs.clone() {
        let deltas = run_indexed(tasks, workers, |task| f(task, epoch));
        if epoch + 1 < epochs.end {
            exchange(epoch, deltas);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_task_index_for_any_worker_count() {
        for workers in [1, 2, 3, 8, 64] {
            let out = run_indexed(17, workers, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn zero_tasks_and_zero_workers_are_fine() {
        assert!(run_indexed(0, 0, |i| i).is_empty());
        assert_eq!(run_indexed(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn epoch_barriers_order_exchanges_deterministically() {
        for workers in [1, 3, 8] {
            // Each task logs (task, epoch) pairs; the exchange log must be
            // identical for every worker count, and no epoch-(e+1) work
            // may be observed before exchange e ran.
            let log = Mutex::new(Vec::new());
            run_epochs(
                4,
                workers,
                0..3,
                |task, epoch| (task, epoch),
                |epoch, deltas| {
                    log.lock().unwrap().push((epoch, deltas));
                },
            )
            .unwrap();
            let log = log.into_inner().unwrap();
            assert_eq!(
                log,
                vec![
                    (0, vec![(0, 0), (1, 0), (2, 0), (3, 0)]),
                    (1, vec![(0, 1), (1, 1), (2, 1), (3, 1)]),
                    // No exchange after the final epoch.
                ],
                "workers={workers}"
            );
        }
    }

    #[test]
    fn resumed_epoch_ranges_skip_completed_epochs() {
        let mut seen = Vec::new();
        run_epochs(2, 1, 2..4, |task, epoch| (task, epoch), |epoch, _| seen.push(epoch)).unwrap();
        assert_eq!(seen, vec![2], "only the non-final epoch of the range exchanges");
    }

    #[test]
    fn zero_workers_in_epochs_is_a_typed_error_not_a_clamp() {
        let err = run_epochs(2, 0, 0..2, |task, _| task, |_, _| {}).unwrap_err();
        assert!(matches!(err, OrchestratorError::InvalidWorkers));
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn tasks_actually_run_concurrently_when_asked() {
        use std::sync::atomic::AtomicUsize;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        run_indexed(8, 4, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) >= 2, "no observed concurrency");
    }
}
