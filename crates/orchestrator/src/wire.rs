//! The coordinator ↔ worker-daemon wire contract.
//!
//! The process-pool transport farms [`ShardJob`]s to `llm4fp-worker`
//! daemons over their stdin/stdout as **length-prefixed JSON frames**:
//!
//! ```text
//! 0000000123\n{...123 bytes of JSON...}
//! ```
//!
//! The prefix is a fixed-width 10-digit ASCII decimal byte length
//! followed by one newline — trivially parseable from any language, easy
//! to eyeball in a captured stream, and unambiguous under partial reads.
//! Every message is one frame; the stream carries no other bytes.
//!
//! The payloads are the run directory's JSONL vocabulary promoted to a
//! wire contract: a job is `(config, spec, segment, checkpoint)` and an
//! answer is `(delta, checkpoint | output, counters)` — the same
//! serializable types the persistence layer already round-trips, which
//! is what makes a worker interchangeable with an in-process runner.
//!
//! A worker is *stateless between jobs*: each job carries everything
//! needed to restore (or freshly create) the shard runner, run one
//! segment, and hand the updated state back. Statelessness is what makes
//! crash-and-redispatch and straggler duplication sound — recomputing a
//! job on another worker yields byte-identical results.

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use llm4fp::{CampaignConfig, RunnerCheckpoint};
use llm4fp_telemetry::CounterSnapshot;

use crate::shard::{ShardOutput, ShardSpec};

/// One segment of one shard, self-contained: everything a stateless
/// worker needs to produce the next barrier state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardJob {
    /// The parent campaign's configuration.
    pub config: CampaignConfig,
    /// The shard plan being executed.
    pub spec: ShardSpec,
    /// How many programs to run this epoch (0 is a legal no-op segment).
    pub segment: usize,
    /// Whether this is the shard's final segment: the worker finishes the
    /// runner and returns its [`ShardOutput`] instead of a checkpoint.
    pub finish: bool,
    /// Resume state from the previous barrier (with the exchange pool
    /// already injected coordinator-side); `None` starts the shard fresh.
    pub checkpoint: Option<RunnerCheckpoint>,
    /// Process-budget slots for external-backend campaigns (each worker
    /// daemon materializes its own budget — the bound is per worker, not
    /// global; results are unaffected either way).
    pub process_slots: usize,
    /// Collect telemetry counters and return them in the result.
    pub telemetry: bool,
}

/// A worker's answer to one [`ShardJob`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardJobResult {
    /// The shard index this result answers (protocol sanity check).
    pub index: usize,
    /// Successful sources newly found during the segment, in discovery
    /// order — the delta the barrier merges.
    pub delta: Vec<String>,
    /// The paused runner's state after the segment (`None` on `finish`).
    pub checkpoint: Option<RunnerCheckpoint>,
    /// The finished shard's output (`Some` exactly on `finish`).
    pub output: Option<ShardOutput>,
    /// Counters the worker collected for this segment, for the
    /// coordinator to absorb into the shard's telemetry lane. Plain
    /// counters sum across segments; keyed counters union first-writer-
    /// wins by id, so the merged `metrics.json` matches in-process runs.
    pub telemetry: Option<CounterSnapshot>,
}

/// A frame from the coordinator to a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireRequest {
    /// Run one shard segment and answer with a [`ShardJobResult`] frame.
    Job(Box<ShardJob>),
    /// Exit cleanly (EOF on stdin means the same).
    Shutdown,
}

/// Byte length of the frame header: 10 ASCII digits + `\n`.
const HEADER_LEN: usize = 11;

/// Upper bound on one frame's payload (256 MiB — far above any real
/// job or result, far below what a corrupt 10-digit header can demand).
/// A header promising more is a typed malformed-frame error *before any
/// allocation*, so a byte-flipped length can never turn into a multi-GB
/// allocation or an OOM kill of the coordinator.
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Write `value` as one frame. Refuses (with
/// [`io::ErrorKind::InvalidData`]) payloads over [`MAX_FRAME_LEN`] —
/// the receiver would reject them anyway, so fail at the producer where
/// the diagnosis is cheap.
pub fn write_frame<T: Serialize, W: Write>(writer: &mut W, value: &T) -> io::Result<()> {
    let payload = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode frame: {e}")))?;
    if payload.len() > MAX_FRAME_LEN {
        return Err(bad_frame(&format!(
            "payload of {} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})",
            payload.len()
        )));
    }
    writeln!(writer, "{:010}", payload.len())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// Read one frame. An EOF *before the first header byte* surfaces as
/// [`io::ErrorKind::UnexpectedEof`] (the clean end-of-stream signal);
/// anything malformed — including a length over [`MAX_FRAME_LEN`] — is
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame<T: serde::de::DeserializeOwned, R: Read>(reader: &mut R) -> io::Result<T> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header)?;
    if header[HEADER_LEN - 1] != b'\n' {
        return Err(bad_frame("header missing newline"));
    }
    let digits = std::str::from_utf8(&header[..HEADER_LEN - 1])
        .map_err(|_| bad_frame("header is not ASCII"))?;
    let len: usize = digits.parse().map_err(|_| bad_frame("header is not a decimal length"))?;
    if len > MAX_FRAME_LEN {
        return Err(bad_frame(&format!(
            "header demands {len} bytes, over MAX_FRAME_LEN ({MAX_FRAME_LEN})"
        )));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload).map_err(|_| bad_frame("payload is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| bad_frame(&format!("payload does not parse: {e}")))
}

fn bad_frame(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed wire frame: {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{plan_shards, shard_seed};
    use llm4fp::ApproachKind;

    fn job(seed: u64, segment: usize, finish: bool) -> ShardJob {
        let config = CampaignConfig::new(ApproachKind::Varity).with_budget(6).with_seed(seed);
        ShardJob {
            spec: plan_shards(&config, 2)[1],
            config,
            segment,
            finish,
            checkpoint: None,
            process_slots: 3,
            telemetry: true,
        }
    }

    #[test]
    fn frames_round_trip_requests() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireRequest::Job(Box::new(job(7, 3, false)))).unwrap();
        write_frame(&mut buf, &WireRequest::Shutdown).unwrap();
        let mut reader = buf.as_slice();
        let first: WireRequest = read_frame(&mut reader).unwrap();
        assert_eq!(first, WireRequest::Job(Box::new(job(7, 3, false))));
        let second: WireRequest = read_frame(&mut reader).unwrap();
        assert_eq!(second, WireRequest::Shutdown);
        // Clean end-of-stream reads as UnexpectedEof.
        let eof = read_frame::<WireRequest, _>(&mut reader).unwrap_err();
        assert_eq!(eof.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn header_is_fixed_width_decimal_plus_newline() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireRequest::Shutdown).unwrap();
        assert_eq!(&buf[..10], format!("{:010}", buf.len() - HEADER_LEN).as_bytes());
        assert_eq!(buf[10], b'\n');
    }

    #[test]
    fn malformed_frames_are_invalid_data_not_panics() {
        for bytes in [
            b"000000000x\n{}".as_slice(), // non-decimal length
            b"0000000002X{}".as_slice(),  // missing newline
            b"0000000002{]".as_slice(),   // unparseable payload
        ] {
            let err = read_frame::<WireRequest, _>(&mut &bytes[..]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bytes:?}");
        }
        // Truncated payload: the stream died mid-frame.
        let err = read_frame::<WireRequest, _>(&mut &b"0000000099\n{}"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_headers_are_rejected_before_allocating() {
        // A corrupt header demanding ~9.3 GiB must fail fast as a typed
        // bad-frame error, not attempt the allocation.
        let err = read_frame::<WireRequest, _>(&mut &b"9999999999\n{}"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("MAX_FRAME_LEN"), "{err}");
    }

    #[test]
    fn results_round_trip_with_output_and_counters() {
        let config = CampaignConfig::new(ApproachKind::Varity).with_budget(4).with_seed(2);
        let spec = plan_shards(&config, 1)[0];
        let output = crate::shard::run_shard(&spec, &crate::shard::ShardCtx::new(&config));
        let result = ShardJobResult {
            index: spec.index,
            delta: output.successful_sources.clone(),
            checkpoint: None,
            output: Some(output),
            telemetry: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &result).unwrap();
        let back: ShardJobResult = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, result);
        assert_eq!(shard_seed(2, 0), 2);
    }
}
