//! The coordinator ↔ worker-daemon wire contract.
//!
//! The process-pool transport farms [`ShardJob`]s to `llm4fp-worker`
//! daemons over their stdin/stdout as **length-prefixed JSON frames**:
//!
//! ```text
//! 0000000123\n{...123 bytes of JSON...}
//! ```
//!
//! The prefix is a fixed-width 10-digit ASCII decimal byte length
//! followed by one newline — trivially parseable from any language, easy
//! to eyeball in a captured stream, and unambiguous under partial reads.
//! Every message is one frame; the stream carries no other bytes.
//!
//! The payloads are the run directory's JSONL vocabulary promoted to a
//! wire contract: a job is `(config, spec, segment, checkpoint)` and an
//! answer is `(delta, checkpoint | output, counters)` — the same
//! serializable types the persistence layer already round-trips, which
//! is what makes a worker interchangeable with an in-process runner.
//!
//! A worker is *stateless between jobs*: each job carries everything
//! needed to restore (or freshly create) the shard runner, run one
//! segment, and hand the updated state back. Statelessness is what makes
//! crash-and-redispatch and straggler duplication sound — recomputing a
//! job on another worker yields byte-identical results.
//!
//! Since the socket transport, every stream opens with a **versioned
//! handshake**: the worker's first frame is [`WireReply::Hello`] and the
//! coordinator answers [`WireRequest::Hello`] (or a typed
//! [`WireRequest::Refuse`]). A version skew is a
//! [`WireError::VersionMismatch`] — a refusal in words, never undefined
//! framing — and the same handshake runs over pipes, so a stale worker
//! binary on either transport fails loudly before any job is exchanged.

use std::fmt;
use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use llm4fp::{CampaignConfig, RunnerCheckpoint};
use llm4fp_telemetry::CounterSnapshot;

use crate::shard::{ShardOutput, ShardSpec};

/// The wire-protocol version this build speaks. Bump on any frame-shape
/// change; the handshake refuses mismatches in words instead of letting
/// two builds mis-parse each other's frames.
pub const PROTOCOL_VERSION: u32 = 1;

/// The opening frame of every stream, sent by both ends (worker first).
/// Carries the two version numbers whose skew could silently corrupt a
/// run: the frame protocol itself and the run-dir manifest schema the
/// checkpoints inside jobs are written against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// The sender's [`PROTOCOL_VERSION`].
    pub protocol: u32,
    /// The sender's [`crate::persist::MANIFEST_SCHEMA`].
    pub manifest_schema: u32,
}

impl Hello {
    /// The handshake frame this build sends.
    pub fn current() -> Self {
        Hello { protocol: PROTOCOL_VERSION, manifest_schema: crate::persist::MANIFEST_SCHEMA }
    }

    /// Accept or refuse a peer's handshake. Any skew is a typed
    /// [`WireError::VersionMismatch`] naming the disagreeing field.
    pub fn check(&self) -> Result<(), WireError> {
        let ours = Hello::current();
        if self.protocol != ours.protocol {
            return Err(WireError::VersionMismatch {
                what: "wire protocol",
                found: self.protocol,
                supported: ours.protocol,
            });
        }
        if self.manifest_schema != ours.manifest_schema {
            return Err(WireError::VersionMismatch {
                what: "manifest schema",
                found: self.manifest_schema,
                supported: ours.manifest_schema,
            });
        }
        Ok(())
    }
}

/// A typed wire-level refusal — the handshake's vocabulary for "we must
/// not talk", distinct from malformed-frame I/O errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer speaks a different protocol or manifest-schema version.
    VersionMismatch {
        /// Which version disagreed ("wire protocol" or "manifest schema").
        what: &'static str,
        /// The peer's version.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The peer refused the handshake and said why.
    Refused(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::VersionMismatch { what, found, supported } => {
                write!(f, "{what} version mismatch: peer speaks {found}, this build {supported}")
            }
            WireError::Refused(reason) => write!(f, "handshake refused by peer: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(err: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, err.to_string())
    }
}

/// One segment of one shard, self-contained: everything a stateless
/// worker needs to produce the next barrier state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardJob {
    /// The parent campaign's configuration.
    pub config: CampaignConfig,
    /// The shard plan being executed.
    pub spec: ShardSpec,
    /// How many programs to run this epoch (0 is a legal no-op segment).
    pub segment: usize,
    /// Whether this is the shard's final segment: the worker finishes the
    /// runner and returns its [`ShardOutput`] instead of a checkpoint.
    pub finish: bool,
    /// Resume state from the previous barrier (with the exchange pool
    /// already injected coordinator-side); `None` starts the shard fresh.
    pub checkpoint: Option<RunnerCheckpoint>,
    /// Process-budget slots for external-backend campaigns (each worker
    /// daemon materializes its own budget — the bound is per worker, not
    /// global; results are unaffected either way).
    pub process_slots: usize,
    /// Collect telemetry counters and return them in the result.
    pub telemetry: bool,
    /// The lease generation under which this dispatch owns the shard.
    /// The worker echoes it back verbatim in [`ShardJobResult::lease`];
    /// the supervisor accepts a result only while that generation is
    /// still live, so a late answer from an expired lease is discarded
    /// rather than racing the re-dispatch. Pipes use it too (one more
    /// reason results stay a pure function of the job, not the worker).
    pub lease: u64,
}

/// A worker's answer to one [`ShardJob`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardJobResult {
    /// The shard index this result answers (protocol sanity check).
    pub index: usize,
    /// Successful sources newly found during the segment, in discovery
    /// order — the delta the barrier merges.
    pub delta: Vec<String>,
    /// The paused runner's state after the segment (`None` on `finish`).
    pub checkpoint: Option<RunnerCheckpoint>,
    /// The finished shard's output (`Some` exactly on `finish`).
    pub output: Option<ShardOutput>,
    /// Counters the worker collected for this segment, for the
    /// coordinator to absorb into the shard's telemetry lane. Plain
    /// counters sum across segments; keyed counters union first-writer-
    /// wins by id, so the merged `metrics.json` matches in-process runs.
    pub telemetry: Option<CounterSnapshot>,
    /// The lease generation of the [`ShardJob`] this result answers,
    /// echoed back verbatim (see [`ShardJob::lease`]).
    pub lease: u64,
}

/// A frame from the coordinator to a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireRequest {
    /// The coordinator's half of the handshake, accepting the worker's
    /// [`WireReply::Hello`].
    Hello(Hello),
    /// The coordinator refuses the handshake (version skew or injected
    /// [`crate::faults::NetworkFault::RefuseHandshake`]); the worker must
    /// not send jobsward frames on this stream.
    Refuse(String),
    /// Run one shard segment and answer with a [`WireReply::Result`].
    Job(Box<ShardJob>),
    /// Liveness probe while idle; the worker answers [`WireReply::Pong`]
    /// with the same token.
    Ping(u64),
    /// Exit cleanly (EOF on stdin means the same).
    Shutdown,
}

/// A frame from a worker to the coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireReply {
    /// The worker's opening handshake — always the stream's first frame.
    Hello(Hello),
    /// The answer to one [`WireRequest::Job`].
    Result(Box<ShardJobResult>),
    /// The answer to one [`WireRequest::Ping`], echoing its token.
    Pong(u64),
}

/// Byte length of the frame header: 10 ASCII digits + `\n`.
const HEADER_LEN: usize = 11;

/// Upper bound on one frame's payload (256 MiB — far above any real
/// job or result, far below what a corrupt 10-digit header can demand).
/// A header promising more is a typed malformed-frame error *before any
/// allocation*, so a byte-flipped length can never turn into a multi-GB
/// allocation or an OOM kill of the coordinator.
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Write `value` as one frame under the default [`MAX_FRAME_LEN`] cap.
pub fn write_frame<T: Serialize, W: Write>(writer: &mut W, value: &T) -> io::Result<()> {
    write_frame_limited(writer, value, MAX_FRAME_LEN)
}

/// Write `value` as one frame. Refuses (with
/// [`io::ErrorKind::InvalidData`]) payloads over `max_frame_len` — the
/// receiver would reject them anyway, so fail at the producer where the
/// diagnosis is cheap. Both ends of a stream must agree on the cap
/// (the coordinator forwards a non-default cap to the workers it
/// spawns via `--max-frame-len`).
pub fn write_frame_limited<T: Serialize, W: Write>(
    writer: &mut W,
    value: &T,
    max_frame_len: usize,
) -> io::Result<()> {
    let payload = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode frame: {e}")))?;
    if payload.len() > max_frame_len {
        return Err(bad_frame(&format!(
            "payload of {} bytes exceeds MAX_FRAME_LEN-class cap ({max_frame_len})",
            payload.len()
        )));
    }
    writeln!(writer, "{:010}", payload.len())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// Read one frame under the default [`MAX_FRAME_LEN`] cap.
pub fn read_frame<T: serde::de::DeserializeOwned, R: Read>(reader: &mut R) -> io::Result<T> {
    read_frame_limited(reader, MAX_FRAME_LEN)
}

/// Read one frame. An EOF *before the first header byte* surfaces as
/// [`io::ErrorKind::UnexpectedEof`] (the clean end-of-stream signal);
/// anything malformed — including a length over `max_frame_len` — is
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame_limited<T: serde::de::DeserializeOwned, R: Read>(
    reader: &mut R,
    max_frame_len: usize,
) -> io::Result<T> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header)?;
    if header[HEADER_LEN - 1] != b'\n' {
        return Err(bad_frame("header missing newline"));
    }
    let digits = std::str::from_utf8(&header[..HEADER_LEN - 1])
        .map_err(|_| bad_frame("header is not ASCII"))?;
    let len: usize = digits.parse().map_err(|_| bad_frame("header is not a decimal length"))?;
    if len > max_frame_len {
        return Err(bad_frame(&format!(
            "header demands {len} bytes, over MAX_FRAME_LEN-class cap ({max_frame_len})"
        )));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload).map_err(|_| bad_frame("payload is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| bad_frame(&format!("payload does not parse: {e}")))
}

fn bad_frame(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed wire frame: {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{plan_shards, shard_seed};
    use llm4fp::ApproachKind;

    fn job(seed: u64, segment: usize, finish: bool) -> ShardJob {
        let config = CampaignConfig::new(ApproachKind::Varity).with_budget(6).with_seed(seed);
        ShardJob {
            spec: plan_shards(&config, 2)[1],
            config,
            segment,
            finish,
            checkpoint: None,
            process_slots: 3,
            telemetry: true,
            lease: 0,
        }
    }

    #[test]
    fn version_skew_is_a_typed_refusal_not_a_parse_error() {
        assert_eq!(Hello::current().check(), Ok(()));
        let old = Hello { protocol: PROTOCOL_VERSION + 9, ..Hello::current() };
        let err = old.check().unwrap_err();
        assert!(matches!(
            err,
            WireError::VersionMismatch { what: "wire protocol", found, supported }
                if found == PROTOCOL_VERSION + 9 && supported == PROTOCOL_VERSION
        ));
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("version mismatch"), "{io_err}");
        let schema = Hello { manifest_schema: 999, ..Hello::current() };
        assert!(matches!(
            schema.check(),
            Err(WireError::VersionMismatch { what: "manifest schema", .. })
        ));
        let refused = WireError::Refused("down for maintenance".into());
        assert!(refused.to_string().contains("down for maintenance"));
    }

    #[test]
    fn handshake_and_liveness_frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireReply::Hello(Hello::current())).unwrap();
        write_frame(&mut buf, &WireRequest::Hello(Hello::current())).unwrap();
        write_frame(&mut buf, &WireRequest::Ping(42)).unwrap();
        write_frame(&mut buf, &WireReply::Pong(42)).unwrap();
        write_frame(&mut buf, &WireRequest::Refuse("too old".into())).unwrap();
        let mut reader = buf.as_slice();
        assert_eq!(
            read_frame::<WireReply, _>(&mut reader).unwrap(),
            WireReply::Hello(Hello::current())
        );
        assert_eq!(
            read_frame::<WireRequest, _>(&mut reader).unwrap(),
            WireRequest::Hello(Hello::current())
        );
        assert_eq!(read_frame::<WireRequest, _>(&mut reader).unwrap(), WireRequest::Ping(42));
        assert_eq!(read_frame::<WireReply, _>(&mut reader).unwrap(), WireReply::Pong(42));
        assert_eq!(
            read_frame::<WireRequest, _>(&mut reader).unwrap(),
            WireRequest::Refuse("too old".into())
        );
    }

    #[test]
    fn custom_frame_caps_bound_both_ends() {
        let mut buf = Vec::new();
        // A tiny cap refuses the write producer-side...
        let err = write_frame_limited(&mut buf, &WireRequest::Shutdown, 3).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // ...and the read consumer-side, even for a well-formed frame.
        buf.clear();
        write_frame(&mut buf, &WireRequest::Shutdown).unwrap();
        let err = read_frame_limited::<WireRequest, _>(&mut buf.as_slice(), 3).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("MAX_FRAME_LEN"), "{err}");
        // A generous custom cap behaves like the default.
        let back: WireRequest = read_frame_limited(&mut buf.as_slice(), MAX_FRAME_LEN).unwrap();
        assert_eq!(back, WireRequest::Shutdown);
    }

    #[test]
    fn frames_round_trip_requests() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireRequest::Job(Box::new(job(7, 3, false)))).unwrap();
        write_frame(&mut buf, &WireRequest::Shutdown).unwrap();
        let mut reader = buf.as_slice();
        let first: WireRequest = read_frame(&mut reader).unwrap();
        assert_eq!(first, WireRequest::Job(Box::new(job(7, 3, false))));
        let second: WireRequest = read_frame(&mut reader).unwrap();
        assert_eq!(second, WireRequest::Shutdown);
        // Clean end-of-stream reads as UnexpectedEof.
        let eof = read_frame::<WireRequest, _>(&mut reader).unwrap_err();
        assert_eq!(eof.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn header_is_fixed_width_decimal_plus_newline() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireRequest::Shutdown).unwrap();
        assert_eq!(&buf[..10], format!("{:010}", buf.len() - HEADER_LEN).as_bytes());
        assert_eq!(buf[10], b'\n');
    }

    #[test]
    fn malformed_frames_are_invalid_data_not_panics() {
        for bytes in [
            b"000000000x\n{}".as_slice(), // non-decimal length
            b"0000000002X{}".as_slice(),  // missing newline
            b"0000000002{]".as_slice(),   // unparseable payload
        ] {
            let err = read_frame::<WireRequest, _>(&mut &bytes[..]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bytes:?}");
        }
        // Truncated payload: the stream died mid-frame.
        let err = read_frame::<WireRequest, _>(&mut &b"0000000099\n{}"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_headers_are_rejected_before_allocating() {
        // A corrupt header demanding ~9.3 GiB must fail fast as a typed
        // bad-frame error, not attempt the allocation.
        let err = read_frame::<WireRequest, _>(&mut &b"9999999999\n{}"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("MAX_FRAME_LEN"), "{err}");
    }

    #[test]
    fn results_round_trip_with_output_and_counters() {
        let config = CampaignConfig::new(ApproachKind::Varity).with_budget(4).with_seed(2);
        let spec = plan_shards(&config, 1)[0];
        let output = crate::shard::run_shard(&spec, &crate::shard::ShardCtx::new(&config));
        let result = ShardJobResult {
            index: spec.index,
            delta: output.successful_sources.clone(),
            checkpoint: None,
            output: Some(output),
            telemetry: None,
            lease: 5,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &result).unwrap();
        let back: ShardJobResult = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, result);
        assert_eq!(shard_seed(2, 0), 2);
    }
}
