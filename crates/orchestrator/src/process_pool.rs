//! The out-of-process transport: `llm4fp-worker` daemons fed over pipes.
//!
//! [`ProcessPoolExecutor`] implements [`ShardExecutor`] by farming
//! [`crate::wire::ShardJob`]s to a pool of persistent worker daemons
//! (the `llm4fp-worker` binary built from this crate), one job in flight
//! per worker, over length-prefixed JSON frames on stdin/stdout
//! ([`crate::wire`]). Fault tolerance is built on the fact that a job is
//! a pure function of its bytes:
//!
//! * **Per-shard timeouts** — a worker that neither answers nor dies
//!   within [`ProcessPoolExecutor::with_shard_timeout`] is killed (whole
//!   process group, reusing the extcc kill machinery) and replaced.
//! * **Crash-and-redispatch** — a dead or hung worker's job re-enters the
//!   queue; after [`max_dispatch_attempts`] failures the failure policy
//!   decides: [`FailurePolicy::Abort`] (default) errors the run out,
//!   [`FailurePolicy::Quarantine`] completes the campaign on the
//!   surviving shards and reports the losses.
//! * **Respawn supervision** — a failed worker spawn is itself a
//!   retryable dispatch failure, spaced by a deterministic seed-derived
//!   exponential backoff ([`crate::faults::respawn_backoff`]); a
//!   transport whose workers can never spawn surfaces
//!   [`OrchestratorError::WorkerUnavailable`], the trigger for the
//!   in-process fallback rung of the degradation ladder.
//! * **Liveness checks at epoch barriers** — a daemon that died between
//!   epochs is detected and its slot cleared before dispatch, so the new
//!   epoch never burns a dispatch attempt discovering a known corpse.
//! * **Straggler re-dispatch** — an idle worker at the epoch tail
//!   duplicates the slowest still-running job (at most one duplicate);
//!   the first answer wins and the loser is discarded, so barriers are
//!   bounded by the second-slowest attempt instead of one bad process.
//!
//! Deterministic chaos testing drives all of this through a serializable
//! [`FaultPlan`] ([`ProcessPoolExecutor::with_fault_plan`]): worker
//! crash/stall/frame-sabotage faults ship to the daemons via one
//! environment variable, and respawn failures inject into the
//! coordinator's own spawn path.
//!
//! Shard state lives coordinator-side between epochs: each barrier's
//! checkpoint comes back with the job result, the exchange pool is
//! injected into the *stored checkpoint* (`RunnerCheckpoint::
//! inject_successful` — commutative with runner-side injection), and the
//! next epoch's job carries the updated checkpoint back out. Workers are
//! stateless and interchangeable; results are bit-identical to
//! [`crate::InProcessExecutor`] for any worker count, crash pattern, or
//! duplication schedule. (The only non-contractual divergence: workers
//! run uncached and runtime scratch is not checkpointed, so wall-clock
//! fields and `ShardOutput::peak_regs` may differ — never the records.)
//!
//! [`max_dispatch_attempts`]: ProcessPoolExecutor::max_dispatch_attempts

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use llm4fp::RunnerCheckpoint;
use llm4fp_extcc::{group_spawn, kill_group};
use llm4fp_telemetry::keys;

use crate::executor::{
    FailurePolicy, OrchestratorError, RecordSink, SessionOutcome, ShardExecutor, ShardSession,
    ShardTask,
};
use crate::faults::{self, FaultPlan};
use crate::shard::{ShardFailureReport, ShardOutput};
use crate::wire::{self, ShardJob, ShardJobResult, WireRequest};

/// Default dispatch-attempt budget per job (crash, hang, spawn failure all
/// count). Override per executor with
/// [`ProcessPoolExecutor::max_dispatch_attempts`].
pub const MAX_DISPATCH_ATTEMPTS: u8 = 3;

/// Default base delay of the deterministic exponential respawn backoff.
pub const DEFAULT_RESPAWN_BACKOFF: Duration = Duration::from_millis(25);

/// Environment variable overriding the worker binary path (useful for
/// driving an explicitly built binary from scripts and CI).
pub const WORKER_BIN_ENV: &str = "LLM4FP_WORKER_BIN";

/// The [`ShardExecutor`] backed by out-of-process worker daemons.
#[derive(Debug, Clone)]
pub struct ProcessPoolExecutor {
    worker_procs: usize,
    worker_bin: Option<PathBuf>,
    shard_timeout: Duration,
    max_dispatch_attempts: u8,
    backoff_base: Duration,
    policy: FailurePolicy,
    faults: FaultPlan,
}

impl ProcessPoolExecutor {
    /// An executor farming jobs to up to `worker_procs` daemons (clamped
    /// to at least 1). The worker binary is resolved from
    /// [`WORKER_BIN_ENV`], then as `llm4fp-worker` next to the current
    /// executable; override with
    /// [`with_worker_bin`](ProcessPoolExecutor::with_worker_bin).
    pub fn new(worker_procs: usize) -> Self {
        ProcessPoolExecutor {
            worker_procs: worker_procs.max(1),
            worker_bin: None,
            shard_timeout: Duration::from_secs(300),
            max_dispatch_attempts: MAX_DISPATCH_ATTEMPTS,
            backoff_base: DEFAULT_RESPAWN_BACKOFF,
            policy: FailurePolicy::default(),
            faults: FaultPlan::none(),
        }
    }

    /// Pin the worker daemon binary path explicitly.
    pub fn with_worker_bin(mut self, bin: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(bin.into());
        self
    }

    /// Wall-clock bound on one dispatched segment. A worker that neither
    /// answers nor exits within it is killed and its job redispatched.
    pub fn with_shard_timeout(mut self, timeout: Duration) -> Self {
        self.shard_timeout = timeout;
        self
    }

    /// How many times one job may fail (crash, hang, spawn failure)
    /// before the [`on_shard_failure`](Self::on_shard_failure) policy
    /// applies. Defaults to [`MAX_DISPATCH_ATTEMPTS`]; `0` is rejected at
    /// [`begin`](ShardExecutor::begin) with
    /// [`OrchestratorError::InvalidDispatchAttempts`].
    pub fn max_dispatch_attempts(mut self, attempts: u8) -> Self {
        self.max_dispatch_attempts = attempts;
        self
    }

    /// Base delay of the deterministic exponential backoff between
    /// consecutive failed spawn attempts of one worker slot (doubles up
    /// to 64x, with seed-derived jitter — see
    /// [`crate::faults::respawn_backoff`]).
    pub fn respawn_backoff_base(mut self, base: Duration) -> Self {
        self.backoff_base = base;
        self
    }

    /// What happens when a shard job exhausts its dispatch budget:
    /// [`FailurePolicy::Abort`] (default) fails the run,
    /// [`FailurePolicy::Quarantine`] completes the surviving shards and
    /// reports the losses in `RunStats::failures` / `summary.json`.
    pub fn on_shard_failure(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arm a deterministic [`FaultPlan`] for chaos testing: worker faults
    /// ship to the daemons via [`crate::faults::FAULT_PLAN_ENV`], and
    /// `respawn_failures` inject into the coordinator's spawn path. An
    /// empty plan (the default) costs one branch per site.
    /// ([`PersistFault`](crate::faults::PersistFault)s belong to the
    /// orchestrator — see [`crate::Orchestrator::persist_faults`].)
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    fn resolve_worker_bin(&self) -> Result<PathBuf, OrchestratorError> {
        if let Some(bin) = &self.worker_bin {
            return Ok(bin.clone());
        }
        if let Some(bin) = std::env::var_os(WORKER_BIN_ENV) {
            return Ok(PathBuf::from(bin));
        }
        let exe = std::env::current_exe().map_err(|e| {
            OrchestratorError::WorkerUnavailable(format!("cannot locate current executable: {e}"))
        })?;
        let mut dir = exe.parent().unwrap_or_else(|| Path::new(".")).to_path_buf();
        // Test binaries live in target/<profile>/deps/; the worker bin
        // sits one level up in target/<profile>/.
        if dir.file_name().is_some_and(|name| name == "deps") {
            dir.pop();
        }
        let bin = dir.join(format!("llm4fp-worker{}", std::env::consts::EXE_SUFFIX));
        if bin.exists() {
            Ok(bin)
        } else {
            Err(OrchestratorError::WorkerUnavailable(format!(
                "worker binary not found at {} (build it with `cargo build -p \
                 llm4fp-orchestrator --bin llm4fp-worker`, set {WORKER_BIN_ENV}, or use \
                 with_worker_bin)",
                bin.display()
            )))
        }
    }
}

impl ShardExecutor for ProcessPoolExecutor {
    fn name(&self) -> &'static str {
        "process-pool"
    }

    /// Workers run in their own processes and never see the coordinator's
    /// result cache.
    fn shares_cache(&self) -> bool {
        false
    }

    fn begin<'s>(
        &self,
        tasks: Vec<ShardTask>,
        sink: &'s dyn RecordSink,
    ) -> Result<Box<dyn ShardSession + 's>, OrchestratorError> {
        if self.max_dispatch_attempts == 0 {
            return Err(OrchestratorError::InvalidDispatchAttempts);
        }
        let bin = self.resolve_worker_bin()?;
        let checkpoints: Vec<Option<RunnerCheckpoint>> =
            tasks.iter().map(|task| task.checkpoint.clone()).collect();
        // On resume, records up to the restored barrier are already
        // accounted for (they live in the checkpoint, not the fresh
        // shard file) — mirror the in-process writer behavior of
        // streaming only newly computed segments.
        let streamed = checkpoints
            .iter()
            .map(|checkpoint| checkpoint.as_ref().map_or(0, |c| c.records.len()))
            .collect();
        let workers = (0..self.worker_procs.max(1).min(tasks.len().max(1))).map(|_| None).collect();
        // Backoff jitter derives from the campaign seed so chaos runs
        // replay identically (any fixed seed preserves determinism; the
        // campaign's makes runs distinguishable in traces).
        let backoff_seed = tasks.first().map_or(0, |task| task.config.seed);
        Ok(Box::new(ProcessPoolSession {
            bin,
            shard_timeout: self.shard_timeout,
            max_dispatch_attempts: self.max_dispatch_attempts,
            backoff_base: self.backoff_base,
            backoff_seed,
            policy: self.policy,
            faults: self.faults.clone(),
            respawn_budget: AtomicU32::new(self.faults.respawn_failures),
            quarantined: vec![false; tasks.len()],
            failures: tasks.iter().map(|_| None).collect(),
            tasks,
            sink,
            workers,
            checkpoints,
            streamed,
            outputs: Vec::new(),
            pool_start: Instant::now(),
        }))
    }
}

/// One live worker daemon: the child process, its stdin, and a channel
/// fed by a detached reader thread draining its stdout frames.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    results: Receiver<io::Result<ShardJobResult>>,
    reaped: bool,
}

impl Worker {
    fn spawn(bin: &Path, fault_env: Option<&str>) -> io::Result<Worker> {
        let mut cmd = Command::new(bin);
        cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::inherit());
        group_spawn(&mut cmd);
        if let Some(value) = fault_env {
            cmd.env(faults::FAULT_PLAN_ENV, value);
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("stdin piped");
        let mut stdout = child.stdout.take().expect("stdout piped");
        let (tx, results) = std::sync::mpsc::channel();
        // Detached reader: exits when the pipe closes (worker death or
        // shutdown) or when the session drops the receiver.
        std::thread::spawn(move || loop {
            match wire::read_frame::<ShardJobResult, _>(&mut stdout) {
                Ok(result) => {
                    if tx.send(Ok(result)).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        });
        Ok(Worker { child, stdin, results, reaped: false })
    }

    /// Ask the daemon to exit and give it a brief grace period; the
    /// `Drop` kill backstops a worker that ignores the request.
    fn shutdown(mut self) {
        let _ = wire::write_frame(&mut self.stdin, &WireRequest::Shutdown);
        for _ in 0..100 {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                self.reaped = true;
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        if !self.reaped {
            kill_group(&mut self.child);
        }
    }
}

/// Why an epoch gave up, and whether the terminal failure was the
/// spawn-the-worker class (which maps to
/// [`OrchestratorError::WorkerUnavailable`] — the in-process fallback's
/// trigger) rather than a job-execution failure.
struct EpochFailure {
    message: String,
    worker_unavailable: bool,
}

/// Shared per-epoch dispatch state (one lock, held only for bookkeeping).
struct EpochState {
    /// Jobs not currently running anywhere (fresh or requeued).
    queue: VecDeque<usize>,
    /// Concurrent dispatches per job (straggler duplication allows 2).
    running: Vec<u8>,
    /// Failed attempts per job.
    attempts: Vec<u8>,
    /// Last failure per job, for quarantine reports.
    last_error: Vec<Option<String>>,
    done: Vec<bool>,
    remaining: usize,
    results: Vec<Option<ShardJobResult>>,
    /// Jobs that exhausted their budget under the quarantine policy this
    /// epoch (sticky `done`, no result, no requeue).
    quarantined: Vec<bool>,
    failed: Option<EpochFailure>,
    max_attempts: u8,
    policy: FailurePolicy,
}

impl EpochState {
    /// Dispatch state over `jobs` jobs, skipping the ones already
    /// quarantined in earlier epochs.
    fn new(
        jobs: usize,
        already_quarantined: &[bool],
        max_attempts: u8,
        policy: FailurePolicy,
    ) -> Self {
        debug_assert_eq!(already_quarantined.len(), jobs);
        let queue: VecDeque<usize> = (0..jobs).filter(|&job| !already_quarantined[job]).collect();
        let remaining = queue.len();
        EpochState {
            queue,
            running: vec![0; jobs],
            attempts: vec![0; jobs],
            last_error: (0..jobs).map(|_| None).collect(),
            done: already_quarantined.to_vec(),
            remaining,
            results: (0..jobs).map(|_| None).collect(),
            quarantined: vec![false; jobs],
            failed: None,
            max_attempts,
            policy,
        }
    }

    /// The next job for an idle worker: queued work first, then a
    /// straggler duplicate (first still-running job without one).
    fn next_job(&mut self) -> Option<usize> {
        let job = self.queue.pop_front().or_else(|| {
            (0..self.done.len()).find(|&job| !self.done[job] && self.running[job] == 1)
        })?;
        self.running[job] += 1;
        Some(job)
    }

    /// A dispatch answered. First answer wins; duplicates are discarded.
    fn complete(&mut self, job: usize, result: ShardJobResult) {
        self.running[job] -= 1;
        if !self.done[job] {
            self.done[job] = true;
            self.remaining -= 1;
            self.results[job] = Some(result);
        }
    }

    /// A dispatch failed (crash, hang, protocol violation, spawn
    /// failure). Requeue unless the job already completed elsewhere or
    /// ran out of attempts — then the failure policy decides between
    /// failing the epoch and quarantining the job. `spawn_failure` marks
    /// the cannot-even-spawn class for the degradation ladder.
    fn abandon(&mut self, job: usize, why: String, spawn_failure: bool) {
        self.running[job] -= 1;
        if self.done[job] {
            return;
        }
        self.attempts[job] += 1;
        if self.attempts[job] >= self.max_attempts {
            let budget = self.max_attempts;
            match self.policy {
                FailurePolicy::Abort => {
                    self.failed = Some(EpochFailure {
                        message: format!(
                            "shard job {job} failed {budget} time(s); last error: {why}"
                        ),
                        worker_unavailable: spawn_failure,
                    });
                }
                FailurePolicy::Quarantine => {
                    self.quarantined[job] = true;
                    self.done[job] = true;
                    self.remaining -= 1;
                }
            }
            self.last_error[job] = Some(why);
        } else {
            self.last_error[job] = Some(why);
            self.queue.push_front(job);
        }
    }
}

struct ProcessPoolSession<'s> {
    bin: PathBuf,
    shard_timeout: Duration,
    max_dispatch_attempts: u8,
    backoff_base: Duration,
    backoff_seed: u64,
    policy: FailurePolicy,
    faults: FaultPlan,
    /// Remaining injected spawn failures ([`FaultPlan::respawn_failures`]).
    respawn_budget: AtomicU32,
    /// Tasks quarantined in *any* epoch so far (sticky for the session).
    quarantined: Vec<bool>,
    /// Failure report per quarantined task.
    failures: Vec<Option<ShardFailureReport>>,
    tasks: Vec<ShardTask>,
    sink: &'s dyn RecordSink,
    /// Worker slots; `None` until a slot's coordinator thread first needs
    /// a daemon (and after a kill, until the respawn).
    workers: Vec<Option<Worker>>,
    /// Coordinator-side shard state between epochs.
    checkpoints: Vec<Option<RunnerCheckpoint>>,
    /// How many of each task's records already reached the sink.
    streamed: Vec<usize>,
    outputs: Vec<Option<ShardOutput>>,
    pool_start: Instant,
}

/// The `Sync` slice of session state the dispatch threads share (the
/// worker slots themselves are `!Sync` — each thread exclusively owns
/// its own slot).
struct PumpCtx<'a> {
    bin: &'a Path,
    shard_timeout: Duration,
    backoff_base: Duration,
    backoff_seed: u64,
    faults: &'a FaultPlan,
    respawn_budget: &'a AtomicU32,
    tasks: &'a [ShardTask],
    checkpoints: &'a [Option<RunnerCheckpoint>],
    segments: &'a [usize],
    last: bool,
    pool_start: Instant,
}

impl PumpCtx<'_> {
    fn build_job(&self, job: usize) -> WireRequest {
        let task = &self.tasks[job];
        WireRequest::Job(Box::new(ShardJob {
            config: task.config.clone(),
            spec: task.spec,
            segment: self.segments[job],
            finish: self.last,
            checkpoint: self.checkpoints[job].clone(),
            process_slots: task.process_slots,
            telemetry: task.telemetry.is_enabled(),
        }))
    }

    /// Whether this spawn attempt is sacrificed to the fault plan's
    /// injected respawn-failure budget (one branch when unarmed).
    fn injected_spawn_failure(&self) -> bool {
        self.faults.respawn_failures != 0
            && self
                .respawn_budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
    }
}

/// One worker slot's dispatch loop: pull a job, ensure a live daemon,
/// send the frame, wait (bounded) for the answer, and translate crashes,
/// hangs and failed spawns into kill + backoff + redispatch.
fn pump_worker(
    slot_index: usize,
    slot: &mut Option<Worker>,
    session: &PumpCtx<'_>,
    state: &Mutex<EpochState>,
) {
    // Worker faults apply to slot 0's first *successful* spawn only (plus
    // whatever `every_worker` adds to all spawns).
    let mut first_spawn = true;
    // Consecutive failed spawn attempts of this slot, for the backoff.
    let mut spawn_failures: u32 = 0;
    loop {
        let job = {
            let mut state = state.lock().unwrap();
            if state.failed.is_some() || state.remaining == 0 {
                return;
            }
            match state.next_job() {
                Some(job) => job,
                None => {
                    drop(state);
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
            }
        };
        if slot.is_none() {
            let spawned = if session.injected_spawn_failure() {
                Err(io::Error::other("injected respawn failure"))
            } else {
                let env = session.faults.worker_env(slot_index == 0 && first_spawn);
                Worker::spawn(session.bin, env.as_deref())
            };
            match spawned {
                Ok(worker) => {
                    *slot = Some(worker);
                    first_spawn = false;
                    spawn_failures = 0;
                }
                Err(e) => {
                    spawn_failures += 1;
                    state.lock().unwrap().abandon(
                        job,
                        format!("cannot spawn worker {}: {e}", session.bin.display()),
                        true,
                    );
                    // Deterministic exponential backoff before this slot
                    // tries to spawn again (the job itself is already
                    // requeued for any slot to pick up).
                    std::thread::sleep(faults::respawn_backoff(
                        session.backoff_seed,
                        slot_index,
                        spawn_failures,
                        session.backoff_base,
                    ));
                    continue;
                }
            }
        }
        let worker = slot.as_mut().expect("worker spawned");
        let telemetry = &session.tasks[job].telemetry;
        telemetry.observe(keys::QUEUE_WAIT, session.pool_start.elapsed());
        let span = telemetry.span(keys::SPAN_SHARD_RUN);
        let request = session.build_job(job);
        let answer = match wire::write_frame(&mut worker.stdin, &request) {
            Err(e) => Err(format!("write to worker failed: {e}")),
            Ok(()) => match worker.results.recv_timeout(session.shard_timeout) {
                Ok(Ok(result)) if result.index == session.tasks[job].spec.index => Ok(result),
                Ok(Ok(result)) => {
                    Err(format!("protocol violation: answer for shard {}", result.index))
                }
                Ok(Err(e)) => Err(format!("worker died: {e}")),
                Err(RecvTimeoutError::Timeout) => {
                    Err(format!("shard timeout after {:.1}s", session.shard_timeout.as_secs_f64()))
                }
                Err(RecvTimeoutError::Disconnected) => Err("worker stream closed".into()),
            },
        };
        drop(span);
        match answer {
            Ok(result) => state.lock().unwrap().complete(job, result),
            Err(why) => {
                // Kill the whole process group (the worker may have
                // compiler children) and let the slot respawn lazily.
                if let Some(mut dead) = slot.take() {
                    kill_group(&mut dead.child);
                    dead.reaped = true;
                }
                state.lock().unwrap().abandon(job, why, false);
            }
        }
    }
}

impl ProcessPoolSession<'_> {
    /// Barrier liveness sweep: clear slots whose daemon died between
    /// epochs (crash after answering, external kill), so dispatch
    /// respawns them immediately instead of burning a dispatch attempt
    /// on a broken pipe.
    fn sweep_dead_workers(&mut self) {
        for slot in self.workers.iter_mut() {
            let dead = matches!(slot.as_mut().map(|w| w.child.try_wait()), Some(Ok(Some(_))));
            if dead {
                let mut worker = slot.take().expect("slot checked non-empty");
                // Already exited — nothing to kill, nothing to reap.
                worker.reaped = true;
            }
        }
    }
}

impl ShardSession for ProcessPoolSession<'_> {
    fn run_epoch(
        &mut self,
        segments: &[usize],
        last: bool,
    ) -> Result<Vec<Vec<String>>, OrchestratorError> {
        debug_assert_eq!(segments.len(), self.tasks.len());
        self.sweep_dead_workers();
        let state = Mutex::new(EpochState::new(
            self.tasks.len(),
            &self.quarantined,
            self.max_dispatch_attempts,
            self.policy,
        ));
        {
            // Split-borrow: each dispatch thread exclusively owns its
            // worker slot; everything else is shared read-only.
            let ctx = PumpCtx {
                bin: &self.bin,
                shard_timeout: self.shard_timeout,
                backoff_base: self.backoff_base,
                backoff_seed: self.backoff_seed,
                faults: &self.faults,
                respawn_budget: &self.respawn_budget,
                tasks: &self.tasks,
                checkpoints: &self.checkpoints,
                segments,
                last,
                pool_start: self.pool_start,
            };
            let ctx = &ctx;
            let state = &state;
            std::thread::scope(|scope| {
                for (slot_index, slot) in self.workers.iter_mut().enumerate() {
                    scope.spawn(move || pump_worker(slot_index, slot, ctx, state));
                }
            });
        }
        let mut state = state.into_inner().unwrap();
        if let Some(failure) = state.failed.take() {
            return Err(if failure.worker_unavailable {
                OrchestratorError::WorkerUnavailable(failure.message)
            } else {
                OrchestratorError::Executor(failure.message)
            });
        }
        // Fold this epoch's quarantine decisions into the session; the
        // reports surface through `finish` and `RunStats::failures`.
        for job in 0..self.tasks.len() {
            if state.quarantined[job] && !self.quarantined[job] {
                self.quarantined[job] = true;
                self.failures[job] = Some(ShardFailureReport {
                    shard: self.tasks[job].spec.index,
                    attempts: u32::from(state.attempts[job]),
                    last_error: state.last_error[job].clone().unwrap_or_default(),
                });
            }
        }
        // Single-threaded post-processing in task order: absorb worker
        // counters (exactly once per job — duplicates were discarded),
        // replay newly computed records into the sink, store barrier
        // state or final outputs. Quarantined jobs contribute an empty
        // delta and nothing else.
        let mut deltas = Vec::with_capacity(self.tasks.len());
        if last {
            self.outputs = (0..self.tasks.len()).map(|_| None).collect();
        }
        for (job, result) in state.results.iter_mut().enumerate() {
            if self.quarantined[job] {
                deltas.push(Vec::new());
                continue;
            }
            let result = result.take().ok_or_else(|| {
                OrchestratorError::Executor(format!("shard job {job} never completed"))
            })?;
            if let Some(snapshot) = &result.telemetry {
                if !snapshot.is_empty() {
                    self.tasks[job].telemetry.absorb(snapshot);
                }
            }
            deltas.push(result.delta);
            if last {
                let output = result.output.ok_or_else(|| {
                    OrchestratorError::Executor(format!(
                        "protocol violation: no output for finished shard job {job}"
                    ))
                })?;
                for record in &output.records[self.streamed[job]..] {
                    self.sink.record(job, record);
                }
                self.sink.complete(job, &output);
                self.outputs[job] = Some(output);
            } else {
                let checkpoint = result.checkpoint.ok_or_else(|| {
                    OrchestratorError::Executor(format!(
                        "protocol violation: no checkpoint for paused shard job {job}"
                    ))
                })?;
                for record in &checkpoint.records[self.streamed[job]..] {
                    self.sink.record(job, record);
                }
                self.streamed[job] = checkpoint.records.len();
                self.checkpoints[job] = Some(checkpoint);
            }
        }
        Ok(deltas)
    }

    fn inject(&mut self, pools: &[&[String]]) -> Result<(), OrchestratorError> {
        debug_assert_eq!(pools.len(), self.checkpoints.len());
        for (job, pool) in pools.iter().enumerate() {
            if self.quarantined[job] {
                continue;
            }
            let checkpoint = self.checkpoints[job].as_mut().ok_or_else(|| {
                OrchestratorError::Executor(format!(
                    "inject before shard job {job} ever ran an epoch"
                ))
            })?;
            checkpoint.inject_successful(pool);
        }
        Ok(())
    }

    fn checkpoints(&mut self) -> Result<Vec<Option<RunnerCheckpoint>>, OrchestratorError> {
        self.checkpoints
            .iter()
            .enumerate()
            .map(|(job, checkpoint)| {
                if self.quarantined[job] {
                    // A quarantined job has no live barrier state; its
                    // stale checkpoint (if any) must not be persisted as
                    // if the barrier were complete.
                    return Ok(None);
                }
                checkpoint.clone().map(Some).ok_or_else(|| {
                    OrchestratorError::Executor(format!(
                        "checkpoint requested before shard job {job} ever ran"
                    ))
                })
            })
            .collect()
    }

    fn finish(mut self: Box<Self>) -> Result<SessionOutcome, OrchestratorError> {
        for worker in self.workers.iter_mut().filter_map(Option::take) {
            worker.shutdown();
        }
        let outputs = std::mem::take(&mut self.outputs);
        if outputs.len() != self.tasks.len() {
            return Err(OrchestratorError::Executor(
                "finish called before the final epoch ran".into(),
            ));
        }
        let shards = outputs
            .into_iter()
            .zip(std::mem::take(&mut self.failures))
            .enumerate()
            .map(|(job, (output, failure))| match (output, failure) {
                (Some(output), _) => Ok(Ok(output)),
                (None, Some(report)) => Ok(Err(report)),
                (None, None) => {
                    Err(OrchestratorError::Executor(format!("shard job {job} has no output")))
                }
            })
            .collect::<Result<Vec<_>, OrchestratorError>>()?;
        Ok(SessionOutcome { shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abort_state(jobs: usize) -> EpochState {
        EpochState::new(jobs, &vec![false; jobs], MAX_DISPATCH_ATTEMPTS, FailurePolicy::Abort)
    }

    #[test]
    fn dispatch_state_requeues_failures_and_caps_attempts() {
        let mut state = abort_state(2);
        assert_eq!(state.next_job(), Some(0));
        assert_eq!(state.next_job(), Some(1));
        // Worker holding job 0 crashes twice; job re-enters the queue.
        state.abandon(0, "crash".into(), false);
        assert!(state.failed.is_none());
        assert_eq!(state.next_job(), Some(0));
        state.abandon(0, "crash".into(), false);
        assert_eq!(state.next_job(), Some(0));
        // Third failure exhausts the attempt budget.
        state.abandon(0, "crash".into(), false);
        let failure = state.failed.as_ref().unwrap();
        assert!(failure.message.contains("3 time(s)"));
        assert!(!failure.worker_unavailable);
    }

    #[test]
    fn spawn_class_failures_mark_worker_unavailable() {
        let mut state = EpochState::new(1, &[false], 1, FailurePolicy::Abort);
        assert_eq!(state.next_job(), Some(0));
        state.abandon(0, "cannot spawn worker".into(), true);
        assert!(state.failed.as_ref().unwrap().worker_unavailable);
    }

    #[test]
    fn quarantine_policy_retires_the_job_instead_of_failing_the_epoch() {
        let mut state = EpochState::new(2, &[false, false], 2, FailurePolicy::Quarantine);
        assert_eq!(state.next_job(), Some(0));
        state.abandon(0, "crash".into(), false);
        assert_eq!(state.next_job(), Some(0));
        state.abandon(0, "crash again".into(), false);
        // Budget exhausted: quarantined, not failed; the epoch continues
        // with the surviving job.
        assert!(state.failed.is_none());
        assert!(state.quarantined[0]);
        assert!(state.done[0]);
        assert_eq!(state.remaining, 1);
        assert_eq!(state.last_error[0].as_deref(), Some("crash again"));
        assert_eq!(state.attempts[0], 2);
        assert_eq!(state.next_job(), Some(1));
        // Later epochs skip quarantined jobs entirely.
        let later = EpochState::new(2, &[true, false], 2, FailurePolicy::Quarantine);
        assert_eq!(later.remaining, 1);
        assert!(later.done[0]);
        assert_eq!(later.queue, VecDeque::from([1]));
    }

    #[test]
    fn stragglers_get_one_duplicate_and_first_answer_wins() {
        let mut state = abort_state(1);
        assert_eq!(state.next_job(), Some(0));
        // Queue empty, job 0 still running: an idle worker duplicates it.
        assert_eq!(state.next_job(), Some(0));
        assert_eq!(state.running[0], 2);
        // No third concurrent attempt.
        assert_eq!(state.next_job(), None);
        let answer = ShardJobResult {
            index: 0,
            delta: vec!["a".into()],
            checkpoint: None,
            output: None,
            telemetry: None,
        };
        state.complete(0, answer.clone());
        assert_eq!(state.remaining, 0);
        // The loser's answer (identical anyway) is discarded, and a
        // late failure of the duplicate no longer requeues anything.
        state.complete(0, answer);
        assert_eq!(state.remaining, 0);
        assert!(state.results[0].is_some());
        assert!(state.queue.is_empty());
    }

    #[test]
    fn missing_worker_binary_is_a_clean_error() {
        let executor = ProcessPoolExecutor::new(2).with_worker_bin("/nonexistent/llm4fp-worker");
        // Resolution succeeds (the path is pinned); the spawn inside the
        // first epoch fails and surfaces as `WorkerUnavailable` — covered
        // by the integration tests. Here: the pinned resolver hands the
        // path through untouched.
        assert_eq!(
            executor.resolve_worker_bin().unwrap(),
            PathBuf::from("/nonexistent/llm4fp-worker")
        );
    }

    #[test]
    fn zero_dispatch_attempts_is_rejected_at_begin() {
        let executor = ProcessPoolExecutor::new(1)
            .with_worker_bin("/nonexistent/llm4fp-worker")
            .max_dispatch_attempts(0);
        let err = match executor.begin(Vec::new(), &crate::executor::NullSink) {
            Ok(_) => panic!("begin must reject a zero dispatch budget"),
            Err(err) => err,
        };
        assert!(matches!(err, OrchestratorError::InvalidDispatchAttempts), "got {err}");
    }
}
