//! The out-of-process transport: `llm4fp-worker` daemons fed over pipes.
//!
//! [`ProcessPoolExecutor`] implements [`ShardExecutor`] by farming
//! [`crate::wire::ShardJob`]s to a pool of persistent worker daemons
//! (the `llm4fp-worker` binary built from this crate), one job in flight
//! per worker, over length-prefixed JSON frames on stdin/stdout
//! ([`crate::wire`]). Fault tolerance is built on the fact that a job is
//! a pure function of its bytes:
//!
//! * **Per-shard timeouts** — a worker that neither answers nor dies
//!   within [`ProcessPoolExecutor::with_shard_timeout`] is killed (whole
//!   process group, reusing the extcc kill machinery) and replaced.
//! * **Crash-and-redispatch** — a dead or hung worker's job re-enters the
//!   queue; after [`MAX_DISPATCH_ATTEMPTS`] failures the run errors out
//!   instead of looping.
//! * **Straggler re-dispatch** — an idle worker at the epoch tail
//!   duplicates the slowest still-running job (at most one duplicate);
//!   the first answer wins and the loser is discarded, so barriers are
//!   bounded by the second-slowest attempt instead of one bad process.
//!
//! Shard state lives coordinator-side between epochs: each barrier's
//! checkpoint comes back with the job result, the exchange pool is
//! injected into the *stored checkpoint* (`RunnerCheckpoint::
//! inject_successful` — commutative with runner-side injection), and the
//! next epoch's job carries the updated checkpoint back out. Workers are
//! stateless and interchangeable; results are bit-identical to
//! [`crate::InProcessExecutor`] for any worker count, crash pattern, or
//! duplication schedule. (The only non-contractual divergence: workers
//! run uncached and runtime scratch is not checkpointed, so wall-clock
//! fields and `ShardOutput::peak_regs` may differ — never the records.)

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use llm4fp::RunnerCheckpoint;
use llm4fp_extcc::{group_spawn, kill_group};
use llm4fp_telemetry::keys;

use crate::executor::{OrchestratorError, RecordSink, ShardExecutor, ShardSession, ShardTask};
use crate::shard::ShardOutput;
use crate::wire::{self, ShardJob, ShardJobResult, WireRequest};

/// How many times one job may fail (crash, hang, spawn failure) before
/// the run errors out instead of redispatching again.
pub const MAX_DISPATCH_ATTEMPTS: u8 = 3;

/// Environment variable overriding the worker binary path (useful for
/// driving an explicitly built binary from scripts and CI).
pub const WORKER_BIN_ENV: &str = "LLM4FP_WORKER_BIN";

/// The [`ShardExecutor`] backed by out-of-process worker daemons.
#[derive(Debug, Clone)]
pub struct ProcessPoolExecutor {
    worker_procs: usize,
    worker_bin: Option<PathBuf>,
    shard_timeout: Duration,
    fault_env: Vec<(String, String)>,
}

impl ProcessPoolExecutor {
    /// An executor farming jobs to up to `worker_procs` daemons (clamped
    /// to at least 1). The worker binary is resolved from
    /// [`WORKER_BIN_ENV`], then as `llm4fp-worker` next to the current
    /// executable; override with
    /// [`with_worker_bin`](ProcessPoolExecutor::with_worker_bin).
    pub fn new(worker_procs: usize) -> Self {
        ProcessPoolExecutor {
            worker_procs: worker_procs.max(1),
            worker_bin: None,
            shard_timeout: Duration::from_secs(300),
            fault_env: Vec::new(),
        }
    }

    /// Pin the worker daemon binary path explicitly.
    pub fn with_worker_bin(mut self, bin: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(bin.into());
        self
    }

    /// Wall-clock bound on one dispatched segment. A worker that neither
    /// answers nor exits within it is killed and its job redispatched.
    pub fn with_shard_timeout(mut self, timeout: Duration) -> Self {
        self.shard_timeout = timeout;
        self
    }

    /// Extra environment for the *first spawn of worker slot 0* only —
    /// the deterministic fault-injection hook the crash/stall tests use
    /// (`LLM4FP_WORKER_CRASH_AT_JOB`, `LLM4FP_WORKER_STALL_MS`).
    /// Respawns after a kill never re-apply it, so an injected fault
    /// cannot fail the same job [`MAX_DISPATCH_ATTEMPTS`] times.
    pub fn with_first_worker_env(
        mut self,
        vars: impl IntoIterator<Item = (String, String)>,
    ) -> Self {
        self.fault_env = vars.into_iter().collect();
        self
    }

    fn resolve_worker_bin(&self) -> Result<PathBuf, OrchestratorError> {
        if let Some(bin) = &self.worker_bin {
            return Ok(bin.clone());
        }
        if let Some(bin) = std::env::var_os(WORKER_BIN_ENV) {
            return Ok(PathBuf::from(bin));
        }
        let exe = std::env::current_exe().map_err(|e| {
            OrchestratorError::Executor(format!("cannot locate current executable: {e}"))
        })?;
        let mut dir = exe.parent().unwrap_or_else(|| Path::new(".")).to_path_buf();
        // Test binaries live in target/<profile>/deps/; the worker bin
        // sits one level up in target/<profile>/.
        if dir.file_name().is_some_and(|name| name == "deps") {
            dir.pop();
        }
        let bin = dir.join(format!("llm4fp-worker{}", std::env::consts::EXE_SUFFIX));
        if bin.exists() {
            Ok(bin)
        } else {
            Err(OrchestratorError::Executor(format!(
                "worker binary not found at {} (build it with `cargo build -p \
                 llm4fp-orchestrator --bin llm4fp-worker`, set {WORKER_BIN_ENV}, or use \
                 with_worker_bin)",
                bin.display()
            )))
        }
    }
}

impl ShardExecutor for ProcessPoolExecutor {
    fn name(&self) -> &'static str {
        "process-pool"
    }

    /// Workers run in their own processes and never see the coordinator's
    /// result cache.
    fn shares_cache(&self) -> bool {
        false
    }

    fn begin<'s>(
        &self,
        tasks: Vec<ShardTask>,
        sink: &'s dyn RecordSink,
    ) -> Result<Box<dyn ShardSession + 's>, OrchestratorError> {
        let bin = self.resolve_worker_bin()?;
        let checkpoints: Vec<Option<RunnerCheckpoint>> =
            tasks.iter().map(|task| task.checkpoint.clone()).collect();
        // On resume, records up to the restored barrier are already
        // accounted for (they live in the checkpoint, not the fresh
        // shard file) — mirror the in-process writer behavior of
        // streaming only newly computed segments.
        let streamed = checkpoints
            .iter()
            .map(|checkpoint| checkpoint.as_ref().map_or(0, |c| c.records.len()))
            .collect();
        let workers = (0..self.worker_procs.max(1).min(tasks.len().max(1))).map(|_| None).collect();
        Ok(Box::new(ProcessPoolSession {
            bin,
            shard_timeout: self.shard_timeout,
            fault_env: self.fault_env.clone(),
            tasks,
            sink,
            workers,
            checkpoints,
            streamed,
            outputs: Vec::new(),
            pool_start: Instant::now(),
        }))
    }
}

/// One live worker daemon: the child process, its stdin, and a channel
/// fed by a detached reader thread draining its stdout frames.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    results: Receiver<io::Result<ShardJobResult>>,
    reaped: bool,
}

impl Worker {
    fn spawn(bin: &Path, env: &[(String, String)]) -> io::Result<Worker> {
        let mut cmd = Command::new(bin);
        cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::inherit());
        group_spawn(&mut cmd);
        for (key, value) in env {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("stdin piped");
        let mut stdout = child.stdout.take().expect("stdout piped");
        let (tx, results) = std::sync::mpsc::channel();
        // Detached reader: exits when the pipe closes (worker death or
        // shutdown) or when the session drops the receiver.
        std::thread::spawn(move || loop {
            match wire::read_frame::<ShardJobResult, _>(&mut stdout) {
                Ok(result) => {
                    if tx.send(Ok(result)).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        });
        Ok(Worker { child, stdin, results, reaped: false })
    }

    /// Ask the daemon to exit and give it a brief grace period; the
    /// `Drop` kill backstops a worker that ignores the request.
    fn shutdown(mut self) {
        let _ = wire::write_frame(&mut self.stdin, &WireRequest::Shutdown);
        for _ in 0..100 {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                self.reaped = true;
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        if !self.reaped {
            kill_group(&mut self.child);
        }
    }
}

/// Shared per-epoch dispatch state (one lock, held only for bookkeeping).
struct EpochState {
    /// Jobs not currently running anywhere (fresh or requeued).
    queue: VecDeque<usize>,
    /// Concurrent dispatches per job (straggler duplication allows 2).
    running: Vec<u8>,
    /// Failed attempts per job.
    attempts: Vec<u8>,
    done: Vec<bool>,
    remaining: usize,
    results: Vec<Option<ShardJobResult>>,
    failed: Option<String>,
}

impl EpochState {
    fn new(jobs: usize) -> Self {
        EpochState {
            queue: (0..jobs).collect(),
            running: vec![0; jobs],
            attempts: vec![0; jobs],
            done: vec![false; jobs],
            remaining: jobs,
            results: (0..jobs).map(|_| None).collect(),
            failed: None,
        }
    }

    /// The next job for an idle worker: queued work first, then a
    /// straggler duplicate (first still-running job without one).
    fn next_job(&mut self) -> Option<usize> {
        let job = self.queue.pop_front().or_else(|| {
            (0..self.done.len()).find(|&job| !self.done[job] && self.running[job] == 1)
        })?;
        self.running[job] += 1;
        Some(job)
    }

    /// A dispatch answered. First answer wins; duplicates are discarded.
    fn complete(&mut self, job: usize, result: ShardJobResult) {
        self.running[job] -= 1;
        if !self.done[job] {
            self.done[job] = true;
            self.remaining -= 1;
            self.results[job] = Some(result);
        }
    }

    /// A dispatch failed (crash, hang, protocol violation). Requeue
    /// unless the job already completed elsewhere or ran out of attempts.
    fn abandon(&mut self, job: usize, why: String) {
        self.running[job] -= 1;
        if self.done[job] {
            return;
        }
        self.attempts[job] += 1;
        if self.attempts[job] >= MAX_DISPATCH_ATTEMPTS {
            self.failed = Some(format!(
                "shard job {job} failed {MAX_DISPATCH_ATTEMPTS} times; last error: {why}"
            ));
        } else {
            self.queue.push_front(job);
        }
    }
}

struct ProcessPoolSession<'s> {
    bin: PathBuf,
    shard_timeout: Duration,
    fault_env: Vec<(String, String)>,
    tasks: Vec<ShardTask>,
    sink: &'s dyn RecordSink,
    /// Worker slots; `None` until a slot's coordinator thread first needs
    /// a daemon (and after a kill, until the respawn).
    workers: Vec<Option<Worker>>,
    /// Coordinator-side shard state between epochs.
    checkpoints: Vec<Option<RunnerCheckpoint>>,
    /// How many of each task's records already reached the sink.
    streamed: Vec<usize>,
    outputs: Vec<Option<ShardOutput>>,
    pool_start: Instant,
}

/// The `Sync` slice of session state the dispatch threads share (the
/// worker slots themselves are `!Sync` — each thread exclusively owns
/// its own slot).
struct PumpCtx<'a> {
    bin: &'a Path,
    shard_timeout: Duration,
    fault_env: &'a [(String, String)],
    tasks: &'a [ShardTask],
    checkpoints: &'a [Option<RunnerCheckpoint>],
    segments: &'a [usize],
    last: bool,
    pool_start: Instant,
}

impl PumpCtx<'_> {
    fn build_job(&self, job: usize) -> WireRequest {
        let task = &self.tasks[job];
        WireRequest::Job(Box::new(ShardJob {
            config: task.config.clone(),
            spec: task.spec,
            segment: self.segments[job],
            finish: self.last,
            checkpoint: self.checkpoints[job].clone(),
            process_slots: task.process_slots,
            telemetry: task.telemetry.is_enabled(),
        }))
    }
}

/// One worker slot's dispatch loop: pull a job, ensure a live daemon,
/// send the frame, wait (bounded) for the answer, and translate crashes
/// and hangs into kill + redispatch.
fn pump_worker(
    slot_index: usize,
    slot: &mut Option<Worker>,
    session: &PumpCtx<'_>,
    state: &Mutex<EpochState>,
) {
    // Fault-injection env applies to slot 0's first spawn only.
    let mut first_spawn = true;
    loop {
        let job = {
            let mut state = state.lock().unwrap();
            if state.failed.is_some() || state.remaining == 0 {
                return;
            }
            match state.next_job() {
                Some(job) => job,
                None => {
                    drop(state);
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
            }
        };
        if slot.is_none() {
            let env: &[(String, String)] =
                if slot_index == 0 && first_spawn { session.fault_env } else { &[] };
            match Worker::spawn(session.bin, env) {
                Ok(worker) => *slot = Some(worker),
                Err(e) => {
                    let mut state = state.lock().unwrap();
                    state.running[job] -= 1;
                    state.failed =
                        Some(format!("cannot spawn worker {}: {e}", session.bin.display()));
                    return;
                }
            }
        }
        first_spawn = false;
        let worker = slot.as_mut().expect("worker spawned");
        let telemetry = &session.tasks[job].telemetry;
        telemetry.observe(keys::QUEUE_WAIT, session.pool_start.elapsed());
        let span = telemetry.span(keys::SPAN_SHARD_RUN);
        let request = session.build_job(job);
        let answer = match wire::write_frame(&mut worker.stdin, &request) {
            Err(e) => Err(format!("write to worker failed: {e}")),
            Ok(()) => match worker.results.recv_timeout(session.shard_timeout) {
                Ok(Ok(result)) if result.index == session.tasks[job].spec.index => Ok(result),
                Ok(Ok(result)) => {
                    Err(format!("protocol violation: answer for shard {}", result.index))
                }
                Ok(Err(e)) => Err(format!("worker died: {e}")),
                Err(RecvTimeoutError::Timeout) => {
                    Err(format!("shard timeout after {:.1}s", session.shard_timeout.as_secs_f64()))
                }
                Err(RecvTimeoutError::Disconnected) => Err("worker stream closed".into()),
            },
        };
        drop(span);
        match answer {
            Ok(result) => state.lock().unwrap().complete(job, result),
            Err(why) => {
                // Kill the whole process group (the worker may have
                // compiler children) and let the slot respawn lazily.
                if let Some(mut dead) = slot.take() {
                    kill_group(&mut dead.child);
                    dead.reaped = true;
                }
                state.lock().unwrap().abandon(job, why);
            }
        }
    }
}

impl ShardSession for ProcessPoolSession<'_> {
    fn run_epoch(
        &mut self,
        segments: &[usize],
        last: bool,
    ) -> Result<Vec<Vec<String>>, OrchestratorError> {
        debug_assert_eq!(segments.len(), self.tasks.len());
        let state = Mutex::new(EpochState::new(self.tasks.len()));
        {
            // Split-borrow: each dispatch thread exclusively owns its
            // worker slot; everything else is shared read-only.
            let ctx = PumpCtx {
                bin: &self.bin,
                shard_timeout: self.shard_timeout,
                fault_env: &self.fault_env,
                tasks: &self.tasks,
                checkpoints: &self.checkpoints,
                segments,
                last,
                pool_start: self.pool_start,
            };
            let ctx = &ctx;
            let state = &state;
            std::thread::scope(|scope| {
                for (slot_index, slot) in self.workers.iter_mut().enumerate() {
                    scope.spawn(move || pump_worker(slot_index, slot, ctx, state));
                }
            });
        }
        let mut state = state.into_inner().unwrap();
        if let Some(why) = state.failed.take() {
            return Err(OrchestratorError::Executor(why));
        }
        // Single-threaded post-processing in task order: absorb worker
        // counters (exactly once per job — duplicates were discarded),
        // replay newly computed records into the sink, store barrier
        // state or final outputs.
        let mut deltas = Vec::with_capacity(self.tasks.len());
        if last {
            self.outputs = (0..self.tasks.len()).map(|_| None).collect();
        }
        for (job, result) in state.results.iter_mut().enumerate() {
            let result = result.take().ok_or_else(|| {
                OrchestratorError::Executor(format!("shard job {job} never completed"))
            })?;
            if let Some(snapshot) = &result.telemetry {
                if !snapshot.is_empty() {
                    self.tasks[job].telemetry.absorb(snapshot);
                }
            }
            deltas.push(result.delta);
            if last {
                let output = result.output.ok_or_else(|| {
                    OrchestratorError::Executor(format!(
                        "protocol violation: no output for finished shard job {job}"
                    ))
                })?;
                for record in &output.records[self.streamed[job]..] {
                    self.sink.record(job, record);
                }
                self.sink.complete(job, &output);
                self.outputs[job] = Some(output);
            } else {
                let checkpoint = result.checkpoint.ok_or_else(|| {
                    OrchestratorError::Executor(format!(
                        "protocol violation: no checkpoint for paused shard job {job}"
                    ))
                })?;
                for record in &checkpoint.records[self.streamed[job]..] {
                    self.sink.record(job, record);
                }
                self.streamed[job] = checkpoint.records.len();
                self.checkpoints[job] = Some(checkpoint);
            }
        }
        Ok(deltas)
    }

    fn inject(&mut self, pools: &[&[String]]) -> Result<(), OrchestratorError> {
        debug_assert_eq!(pools.len(), self.checkpoints.len());
        for (job, pool) in pools.iter().enumerate() {
            let checkpoint = self.checkpoints[job].as_mut().ok_or_else(|| {
                OrchestratorError::Executor(format!(
                    "inject before shard job {job} ever ran an epoch"
                ))
            })?;
            checkpoint.inject_successful(pool);
        }
        Ok(())
    }

    fn checkpoints(&mut self) -> Result<Vec<RunnerCheckpoint>, OrchestratorError> {
        self.checkpoints
            .iter()
            .enumerate()
            .map(|(job, checkpoint)| {
                checkpoint.clone().ok_or_else(|| {
                    OrchestratorError::Executor(format!(
                        "checkpoint requested before shard job {job} ever ran"
                    ))
                })
            })
            .collect()
    }

    fn finish(mut self: Box<Self>) -> Result<Vec<ShardOutput>, OrchestratorError> {
        for worker in self.workers.iter_mut().filter_map(Option::take) {
            worker.shutdown();
        }
        let outputs = std::mem::take(&mut self.outputs);
        if outputs.len() != self.tasks.len() {
            return Err(OrchestratorError::Executor(
                "finish called before the final epoch ran".into(),
            ));
        }
        outputs
            .into_iter()
            .enumerate()
            .map(|(job, output)| {
                output.ok_or_else(|| {
                    OrchestratorError::Executor(format!("shard job {job} has no output"))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_state_requeues_failures_and_caps_attempts() {
        let mut state = EpochState::new(2);
        assert_eq!(state.next_job(), Some(0));
        assert_eq!(state.next_job(), Some(1));
        // Worker holding job 0 crashes twice; job re-enters the queue.
        state.abandon(0, "crash".into());
        assert!(state.failed.is_none());
        assert_eq!(state.next_job(), Some(0));
        state.abandon(0, "crash".into());
        assert_eq!(state.next_job(), Some(0));
        // Third failure exhausts the attempt budget.
        state.abandon(0, "crash".into());
        assert!(state.failed.as_deref().unwrap().contains("3 times"));
    }

    #[test]
    fn stragglers_get_one_duplicate_and_first_answer_wins() {
        let mut state = EpochState::new(1);
        assert_eq!(state.next_job(), Some(0));
        // Queue empty, job 0 still running: an idle worker duplicates it.
        assert_eq!(state.next_job(), Some(0));
        assert_eq!(state.running[0], 2);
        // No third concurrent attempt.
        assert_eq!(state.next_job(), None);
        let answer = ShardJobResult {
            index: 0,
            delta: vec!["a".into()],
            checkpoint: None,
            output: None,
            telemetry: None,
        };
        state.complete(0, answer.clone());
        assert_eq!(state.remaining, 0);
        // The loser's answer (identical anyway) is discarded, and a
        // late failure of the duplicate no longer requeues anything.
        state.complete(0, answer);
        assert_eq!(state.remaining, 0);
        assert!(state.results[0].is_some());
        assert!(state.queue.is_empty());
    }

    #[test]
    fn missing_worker_binary_is_a_clean_error() {
        let executor = ProcessPoolExecutor::new(2).with_worker_bin("/nonexistent/llm4fp-worker");
        // Resolution succeeds (the path is pinned); the spawn inside the
        // first epoch fails and surfaces as an executor error — covered
        // by the integration tests. Here: the unpinned resolver errors
        // when nothing exists next to the test binary and the env is
        // unset (or points somewhere real — accept both).
        assert_eq!(
            executor.resolve_worker_bin().unwrap(),
            PathBuf::from("/nonexistent/llm4fp-worker")
        );
    }
}
