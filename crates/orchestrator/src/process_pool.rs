//! The out-of-process transport: `llm4fp-worker` daemons fed over pipes.
//!
//! [`ProcessPoolExecutor`] implements [`ShardExecutor`] by farming
//! [`crate::wire::ShardJob`]s to a pool of persistent worker daemons
//! (the `llm4fp-worker` binary built from this crate), one job in flight
//! per worker, over length-prefixed JSON frames on stdin/stdout
//! ([`crate::wire`]). Fault tolerance is built on the fact that a job is
//! a pure function of its bytes:
//!
//! * **Per-shard timeouts** — a worker that neither answers nor dies
//!   within [`ProcessPoolExecutor::with_shard_timeout`] is killed (whole
//!   process group, reusing the extcc kill machinery) and replaced.
//! * **Crash-and-redispatch** — a dead or hung worker's job re-enters the
//!   queue; after [`max_dispatch_attempts`] failures the failure policy
//!   decides: [`FailurePolicy::Abort`] (default) errors the run out,
//!   [`FailurePolicy::Quarantine`] completes the campaign on the
//!   surviving shards and reports the losses.
//! * **Respawn supervision** — a failed worker spawn is itself a
//!   retryable dispatch failure, spaced by a deterministic seed-derived
//!   exponential backoff ([`crate::faults::respawn_backoff`]); a
//!   transport whose workers can never spawn surfaces
//!   [`OrchestratorError::WorkerUnavailable`], the trigger for the
//!   in-process fallback rung of the degradation ladder.
//! * **Liveness checks at epoch barriers** — a daemon that died between
//!   epochs is detected and its slot cleared before dispatch, so the new
//!   epoch never burns a dispatch attempt discovering a known corpse.
//! * **Straggler re-dispatch** — an idle worker at the epoch tail
//!   duplicates the slowest still-running job (at most one duplicate);
//!   the first answer wins and the loser is discarded, so barriers are
//!   bounded by the second-slowest attempt instead of one bad process.
//!
//! Deterministic chaos testing drives all of this through a serializable
//! [`FaultPlan`] ([`ProcessPoolExecutor::with_fault_plan`]): worker
//! crash/stall/frame-sabotage faults ship to the daemons via one
//! environment variable, and respawn failures inject into the
//! coordinator's own spawn path.
//!
//! Shard state lives coordinator-side between epochs: each barrier's
//! checkpoint comes back with the job result, the exchange pool is
//! injected into the *stored checkpoint* (`RunnerCheckpoint::
//! inject_successful` — commutative with runner-side injection), and the
//! next epoch's job carries the updated checkpoint back out. Workers are
//! stateless and interchangeable; results are bit-identical to
//! [`crate::InProcessExecutor`] for any worker count, crash pattern, or
//! duplication schedule. (The only non-contractual divergence: workers
//! run uncached and runtime scratch is not checkpointed, so wall-clock
//! fields and `ShardOutput::peak_regs` may differ — never the records.)
//!
//! [`max_dispatch_attempts`]: ProcessPoolExecutor::max_dispatch_attempts

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use llm4fp::RunnerCheckpoint;
use llm4fp_extcc::{group_spawn, kill_group};
use llm4fp_telemetry::keys;

use crate::executor::{
    FailurePolicy, OrchestratorError, RecordSink, SessionOutcome, ShardExecutor, ShardSession,
    ShardTask,
};
use crate::faults::{self, FaultPlan};
use crate::supervisor::{EpochState, SessionCore};
use crate::wire::{self, Hello, ShardJobResult, WireReply, WireRequest, MAX_FRAME_LEN};

/// Default dispatch-attempt budget per job (crash, hang, spawn failure all
/// count). Override per executor with
/// [`ProcessPoolExecutor::max_dispatch_attempts`].
pub const MAX_DISPATCH_ATTEMPTS: u8 = 3;

/// Default base delay of the deterministic exponential respawn backoff.
pub const DEFAULT_RESPAWN_BACKOFF: Duration = Duration::from_millis(25);

/// Environment variable overriding the worker binary path (useful for
/// driving an explicitly built binary from scripts and CI).
pub const WORKER_BIN_ENV: &str = "LLM4FP_WORKER_BIN";

/// The [`ShardExecutor`] backed by out-of-process worker daemons.
#[derive(Debug, Clone)]
pub struct ProcessPoolExecutor {
    worker_procs: usize,
    worker_bin: Option<PathBuf>,
    shard_timeout: Duration,
    max_dispatch_attempts: u8,
    backoff_base: Duration,
    policy: FailurePolicy,
    faults: FaultPlan,
    max_frame_len: usize,
}

impl ProcessPoolExecutor {
    /// An executor farming jobs to up to `worker_procs` daemons (clamped
    /// to at least 1). The worker binary is resolved from
    /// [`WORKER_BIN_ENV`], then as `llm4fp-worker` next to the current
    /// executable; override with
    /// [`with_worker_bin`](ProcessPoolExecutor::with_worker_bin).
    pub fn new(worker_procs: usize) -> Self {
        ProcessPoolExecutor {
            worker_procs: worker_procs.max(1),
            worker_bin: None,
            shard_timeout: Duration::from_secs(300),
            max_dispatch_attempts: MAX_DISPATCH_ATTEMPTS,
            backoff_base: DEFAULT_RESPAWN_BACKOFF,
            policy: FailurePolicy::default(),
            faults: FaultPlan::none(),
            max_frame_len: MAX_FRAME_LEN,
        }
    }

    /// Pin the worker daemon binary path explicitly.
    pub fn with_worker_bin(mut self, bin: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(bin.into());
        self
    }

    /// Wall-clock bound on one dispatched segment. A worker that neither
    /// answers nor exits within it is killed and its job redispatched.
    pub fn with_shard_timeout(mut self, timeout: Duration) -> Self {
        self.shard_timeout = timeout;
        self
    }

    /// How many times one job may fail (crash, hang, spawn failure)
    /// before the [`on_shard_failure`](Self::on_shard_failure) policy
    /// applies. Defaults to [`MAX_DISPATCH_ATTEMPTS`]; `0` is rejected at
    /// [`begin`](ShardExecutor::begin) with
    /// [`OrchestratorError::InvalidDispatchAttempts`].
    pub fn max_dispatch_attempts(mut self, attempts: u8) -> Self {
        self.max_dispatch_attempts = attempts;
        self
    }

    /// Base delay of the deterministic exponential backoff between
    /// consecutive failed spawn attempts of one worker slot (doubles up
    /// to 64x, with seed-derived jitter — see
    /// [`crate::faults::respawn_backoff`]).
    pub fn respawn_backoff_base(mut self, base: Duration) -> Self {
        self.backoff_base = base;
        self
    }

    /// What happens when a shard job exhausts its dispatch budget:
    /// [`FailurePolicy::Abort`] (default) fails the run,
    /// [`FailurePolicy::Quarantine`] completes the surviving shards and
    /// reports the losses in `RunStats::failures` / `summary.json`.
    pub fn on_shard_failure(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arm a deterministic [`FaultPlan`] for chaos testing: worker faults
    /// ship to the daemons via [`crate::faults::FAULT_PLAN_ENV`], and
    /// `respawn_failures` inject into the coordinator's spawn path. An
    /// empty plan (the default) costs one branch per site.
    /// ([`PersistFault`](crate::faults::PersistFault)s belong to the
    /// orchestrator — see [`crate::Orchestrator::persist_faults`].)
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Cap on one wire frame's payload, for both directions of every
    /// worker stream (the cap is forwarded to spawned workers via
    /// `--max-frame-len`). Defaults to [`MAX_FRAME_LEN`] (256 MiB);
    /// `0` is rejected at [`begin`](ShardExecutor::begin) with
    /// [`OrchestratorError::InvalidFrameLen`].
    pub fn with_max_frame_len(mut self, max_frame_len: usize) -> Self {
        self.max_frame_len = max_frame_len;
        self
    }

    fn resolve_worker_bin(&self) -> Result<PathBuf, OrchestratorError> {
        resolve_worker_bin(self.worker_bin.as_deref())
    }
}

/// Resolve the `llm4fp-worker` binary for a pool transport: the explicit
/// override, then [`WORKER_BIN_ENV`], then `llm4fp-worker` next to the
/// current executable.
pub(crate) fn resolve_worker_bin(explicit: Option<&Path>) -> Result<PathBuf, OrchestratorError> {
    if let Some(bin) = explicit {
        return Ok(bin.to_path_buf());
    }
    if let Some(bin) = std::env::var_os(WORKER_BIN_ENV) {
        return Ok(PathBuf::from(bin));
    }
    let exe = std::env::current_exe().map_err(|e| {
        OrchestratorError::WorkerUnavailable(format!("cannot locate current executable: {e}"))
    })?;
    let mut dir = exe.parent().unwrap_or_else(|| Path::new(".")).to_path_buf();
    // Test binaries live in target/<profile>/deps/; the worker bin
    // sits one level up in target/<profile>/.
    if dir.file_name().is_some_and(|name| name == "deps") {
        dir.pop();
    }
    let bin = dir.join(format!("llm4fp-worker{}", std::env::consts::EXE_SUFFIX));
    if bin.exists() {
        Ok(bin)
    } else {
        Err(OrchestratorError::WorkerUnavailable(format!(
            "worker binary not found at {} (build it with `cargo build -p \
             llm4fp-orchestrator --bin llm4fp-worker`, set {WORKER_BIN_ENV}, or use \
             with_worker_bin)",
            bin.display()
        )))
    }
}

impl ShardExecutor for ProcessPoolExecutor {
    fn name(&self) -> &'static str {
        "process-pool"
    }

    /// Workers run in their own processes and never see the coordinator's
    /// result cache.
    fn shares_cache(&self) -> bool {
        false
    }

    fn begin<'s>(
        &self,
        tasks: Vec<ShardTask>,
        sink: &'s dyn RecordSink,
    ) -> Result<Box<dyn ShardSession + 's>, OrchestratorError> {
        if self.max_dispatch_attempts == 0 {
            return Err(OrchestratorError::InvalidDispatchAttempts);
        }
        if self.max_frame_len == 0 {
            return Err(OrchestratorError::InvalidFrameLen);
        }
        let bin = self.resolve_worker_bin()?;
        let workers = (0..self.worker_procs.max(1).min(tasks.len().max(1))).map(|_| None).collect();
        // Backoff jitter derives from the campaign seed so chaos runs
        // replay identically (any fixed seed preserves determinism; the
        // campaign's makes runs distinguishable in traces).
        let backoff_seed = tasks.first().map_or(0, |task| task.config.seed);
        Ok(Box::new(ProcessPoolSession {
            core: SessionCore::new(tasks, sink, self.max_dispatch_attempts, self.policy),
            bin,
            shard_timeout: self.shard_timeout,
            backoff_base: self.backoff_base,
            backoff_seed,
            faults: self.faults.clone(),
            respawn_budget: AtomicU32::new(self.faults.respawn_failures),
            max_frame_len: self.max_frame_len,
            workers,
            pool_start: Instant::now(),
        }))
    }
}

/// One live worker daemon: the child process, its stdin, and a channel
/// fed by a detached reader thread draining its stdout frames.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    results: Receiver<io::Result<ShardJobResult>>,
    reaped: bool,
}

impl Worker {
    fn spawn(bin: &Path, fault_env: Option<&str>, max_frame_len: usize) -> io::Result<Worker> {
        let mut cmd = Command::new(bin);
        cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::inherit());
        group_spawn(&mut cmd);
        if let Some(value) = fault_env {
            cmd.env(faults::FAULT_PLAN_ENV, value);
        }
        if max_frame_len != MAX_FRAME_LEN {
            cmd.arg("--max-frame-len").arg(max_frame_len.to_string());
        }
        let mut child = cmd.spawn()?;
        let mut stdin = child.stdin.take().expect("stdin piped");
        let mut stdout = child.stdout.take().expect("stdout piped");
        // Coordinator's half of the versioned handshake; the worker's
        // half is the first frame the reader thread sees below.
        wire::write_frame_limited(
            &mut stdin,
            &WireRequest::Hello(Hello::current()),
            max_frame_len,
        )?;
        let (tx, results) = std::sync::mpsc::channel();
        // Detached reader: exits when the pipe closes (worker death or
        // shutdown) or when the session drops the receiver. The first
        // frame must be the worker's `Hello`; a version skew surfaces
        // as a typed `WireError::VersionMismatch`, never a parse error.
        std::thread::spawn(move || {
            match wire::read_frame_limited::<WireReply, _>(&mut stdout, max_frame_len) {
                Ok(WireReply::Hello(hello)) => {
                    if let Err(skew) = hello.check() {
                        let _ = tx.send(Err(skew.into()));
                        return;
                    }
                }
                Ok(_) => {
                    let _ = tx.send(Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "protocol violation: worker's first frame was not Hello",
                    )));
                    return;
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
            loop {
                match wire::read_frame_limited::<WireReply, _>(&mut stdout, max_frame_len) {
                    Ok(WireReply::Result(result)) => {
                        if tx.send(Ok(*result)).is_err() {
                            break;
                        }
                    }
                    Ok(other) => {
                        let _ = tx.send(Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("protocol violation: unexpected frame {other:?}"),
                        )));
                        break;
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });
        Ok(Worker { child, stdin, results, reaped: false })
    }

    /// Ask the daemon to exit and give it a brief grace period; the
    /// `Drop` kill backstops a worker that ignores the request.
    fn shutdown(mut self) {
        let _ = wire::write_frame(&mut self.stdin, &WireRequest::Shutdown);
        for _ in 0..100 {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                self.reaped = true;
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        if !self.reaped {
            kill_group(&mut self.child);
        }
    }
}

struct ProcessPoolSession<'s> {
    /// The transport-independent session half (tasks, checkpoints,
    /// quarantine ledger, epoch folding) — see [`crate::supervisor`].
    core: SessionCore<'s>,
    bin: PathBuf,
    shard_timeout: Duration,
    backoff_base: Duration,
    backoff_seed: u64,
    faults: FaultPlan,
    /// Remaining injected spawn failures ([`FaultPlan::respawn_failures`]).
    respawn_budget: AtomicU32,
    max_frame_len: usize,
    /// Worker slots; `None` until a slot's coordinator thread first needs
    /// a daemon (and after a kill, until the respawn).
    workers: Vec<Option<Worker>>,
    pool_start: Instant,
}

/// The `Sync` slice of session state the dispatch threads share (the
/// worker slots themselves are `!Sync` — each thread exclusively owns
/// its own slot).
struct PumpCtx<'a> {
    core: &'a SessionCore<'a>,
    bin: &'a Path,
    shard_timeout: Duration,
    backoff_base: Duration,
    backoff_seed: u64,
    faults: &'a FaultPlan,
    respawn_budget: &'a AtomicU32,
    max_frame_len: usize,
    segments: &'a [usize],
    last: bool,
    pool_start: Instant,
}

impl PumpCtx<'_> {
    fn build_job(&self, job: usize, lease: u64) -> WireRequest {
        WireRequest::Job(Box::new(self.core.build_job(job, self.segments[job], self.last, lease)))
    }

    /// Whether this spawn attempt is sacrificed to the fault plan's
    /// injected respawn-failure budget (one branch when unarmed).
    fn injected_spawn_failure(&self) -> bool {
        self.faults.respawn_failures != 0
            && self
                .respawn_budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
    }
}

/// One worker slot's dispatch loop: pull a job, ensure a live daemon,
/// send the frame, wait (bounded) for the answer, and translate crashes,
/// hangs and failed spawns into kill + backoff + redispatch.
fn pump_worker(
    slot_index: usize,
    slot: &mut Option<Worker>,
    session: &PumpCtx<'_>,
    state: &Mutex<EpochState>,
) {
    // Worker faults apply to slot 0's first *successful* spawn only (plus
    // whatever `every_worker` adds to all spawns).
    let mut first_spawn = true;
    // Consecutive failed spawn attempts of this slot, for the backoff.
    let mut spawn_failures: u32 = 0;
    loop {
        let (job, lease) = {
            let mut state = state.lock().unwrap();
            if state.is_settled() {
                return;
            }
            match state.next_job() {
                Some(leased) => leased,
                None => {
                    drop(state);
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
            }
        };
        if slot.is_none() {
            let spawned = if session.injected_spawn_failure() {
                Err(io::Error::other("injected respawn failure"))
            } else {
                let env = session.faults.worker_env(slot_index == 0 && first_spawn);
                Worker::spawn(session.bin, env.as_deref(), session.max_frame_len)
            };
            match spawned {
                Ok(worker) => {
                    *slot = Some(worker);
                    first_spawn = false;
                    spawn_failures = 0;
                }
                Err(e) => {
                    spawn_failures += 1;
                    state.lock().unwrap().abandon(
                        job,
                        lease,
                        format!("cannot spawn worker {}: {e}", session.bin.display()),
                        true,
                    );
                    // Deterministic exponential backoff before this slot
                    // tries to spawn again (the job itself is already
                    // requeued for any slot to pick up).
                    std::thread::sleep(faults::respawn_backoff(
                        session.backoff_seed,
                        slot_index,
                        spawn_failures,
                        session.backoff_base,
                    ));
                    continue;
                }
            }
        }
        let worker = slot.as_mut().expect("worker spawned");
        let telemetry = &session.core.tasks[job].telemetry;
        telemetry.observe(keys::QUEUE_WAIT, session.pool_start.elapsed());
        let span = telemetry.span(keys::SPAN_SHARD_RUN);
        let request = session.build_job(job, lease);
        let answer =
            match wire::write_frame_limited(&mut worker.stdin, &request, session.max_frame_len) {
                Err(e) => Err(format!("write to worker failed: {e}")),
                Ok(()) => match worker.results.recv_timeout(session.shard_timeout) {
                    Ok(Ok(result)) if result.index == session.core.tasks[job].spec.index => {
                        Ok(result)
                    }
                    Ok(Ok(result)) => {
                        Err(format!("protocol violation: answer for shard {}", result.index))
                    }
                    Ok(Err(e)) => Err(format!("worker died: {e}")),
                    Err(RecvTimeoutError::Timeout) => Err(format!(
                        "shard timeout after {:.1}s",
                        session.shard_timeout.as_secs_f64()
                    )),
                    Err(RecvTimeoutError::Disconnected) => Err("worker stream closed".into()),
                },
            };
        drop(span);
        match answer {
            Ok(result) => {
                // One job in flight per pipe worker, so the lease is
                // always still live here (the return value only matters
                // to the socket transport's late-answer path).
                let _ = state.lock().unwrap().complete(job, lease, result);
            }
            Err(why) => {
                // Kill the whole process group (the worker may have
                // compiler children) and let the slot respawn lazily.
                if let Some(mut dead) = slot.take() {
                    kill_group(&mut dead.child);
                    dead.reaped = true;
                }
                state.lock().unwrap().abandon(job, lease, why, false);
            }
        }
    }
}

impl ProcessPoolSession<'_> {
    /// Barrier liveness sweep: clear slots whose daemon died between
    /// epochs (crash after answering, external kill), so dispatch
    /// respawns them immediately instead of burning a dispatch attempt
    /// on a broken pipe.
    fn sweep_dead_workers(&mut self) {
        for slot in self.workers.iter_mut() {
            let dead = matches!(slot.as_mut().map(|w| w.child.try_wait()), Some(Ok(Some(_))));
            if dead {
                let mut worker = slot.take().expect("slot checked non-empty");
                // Already exited — nothing to kill, nothing to reap.
                worker.reaped = true;
            }
        }
    }
}

impl ShardSession for ProcessPoolSession<'_> {
    fn run_epoch(
        &mut self,
        segments: &[usize],
        last: bool,
    ) -> Result<Vec<Vec<String>>, OrchestratorError> {
        debug_assert_eq!(segments.len(), self.core.tasks.len());
        self.sweep_dead_workers();
        let state = Mutex::new(self.core.epoch_state());
        {
            // Split-borrow: each dispatch thread exclusively owns its
            // worker slot; everything else is shared read-only.
            let ctx = PumpCtx {
                core: &self.core,
                bin: &self.bin,
                shard_timeout: self.shard_timeout,
                backoff_base: self.backoff_base,
                backoff_seed: self.backoff_seed,
                faults: &self.faults,
                respawn_budget: &self.respawn_budget,
                max_frame_len: self.max_frame_len,
                segments,
                last,
                pool_start: self.pool_start,
            };
            let ctx = &ctx;
            let state = &state;
            std::thread::scope(|scope| {
                for (slot_index, slot) in self.workers.iter_mut().enumerate() {
                    scope.spawn(move || pump_worker(slot_index, slot, ctx, state));
                }
            });
        }
        let state = state.into_inner().unwrap();
        self.core.fold_epoch(state, last)
    }

    fn inject(&mut self, pools: &[&[String]]) -> Result<(), OrchestratorError> {
        self.core.inject(pools)
    }

    fn checkpoints(&mut self) -> Result<Vec<Option<RunnerCheckpoint>>, OrchestratorError> {
        self.core.checkpoints()
    }

    fn finish(mut self: Box<Self>) -> Result<SessionOutcome, OrchestratorError> {
        for worker in self.workers.iter_mut().filter_map(Option::take) {
            worker.shutdown();
        }
        self.core.outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_worker_binary_is_a_clean_error() {
        let executor = ProcessPoolExecutor::new(2).with_worker_bin("/nonexistent/llm4fp-worker");
        // Resolution succeeds (the path is pinned); the spawn inside the
        // first epoch fails and surfaces as `WorkerUnavailable` — covered
        // by the integration tests. Here: the pinned resolver hands the
        // path through untouched.
        assert_eq!(
            executor.resolve_worker_bin().unwrap(),
            PathBuf::from("/nonexistent/llm4fp-worker")
        );
    }

    #[test]
    fn zero_dispatch_attempts_is_rejected_at_begin() {
        let executor = ProcessPoolExecutor::new(1)
            .with_worker_bin("/nonexistent/llm4fp-worker")
            .max_dispatch_attempts(0);
        let err = match executor.begin(Vec::new(), &crate::executor::NullSink) {
            Ok(_) => panic!("begin must reject a zero dispatch budget"),
            Err(err) => err,
        };
        assert!(matches!(err, OrchestratorError::InvalidDispatchAttempts), "got {err}");
    }

    #[test]
    fn zero_max_frame_len_is_rejected_at_begin() {
        let executor = ProcessPoolExecutor::new(1)
            .with_worker_bin("/nonexistent/llm4fp-worker")
            .with_max_frame_len(0);
        let err = match executor.begin(Vec::new(), &crate::executor::NullSink) {
            Ok(_) => panic!("begin must reject a zero frame cap"),
            Err(err) => err,
        };
        assert!(matches!(err, OrchestratorError::InvalidFrameLen), "got {err}");
        assert!(err.to_string().contains("max_frame_len"), "{err}");
    }
}
