//! # llm4fp-mathlib
//!
//! Floating-point math libraries for the LLM4FP virtual compiler.
//!
//! The paper's experimental setup links host binaries against the GNU C
//! math library and device (CUDA) binaries against the CUDA math library;
//! the two libraries return results that differ by a few ULP for many
//! transcendental functions, and `--use_fast_math` substitutes much less
//! accurate approximations. Those differences are a primary source of the
//! host-vs-device inconsistencies the paper reports (RQ3).
//!
//! This crate rebuilds that situation from scratch with three independent
//! implementations behind one trait:
//!
//! * [`HostLibm`] — the reference library (Rust's `f64` intrinsics, which on
//!   this platform follow the correctly-rounded-ish glibc behaviour).
//! * [`DeviceMathLib`] — an independent implementation (own argument
//!   reduction and polynomial kernels) accurate to a few ULP, standing in
//!   for the CUDA math library.
//! * [`FastMathLib`] — reduced-accuracy approximations standing in for the
//!   `-ffast-math` / `--use_fast_math` function replacements, plus
//!   flush-to-zero helpers.
//!
//! The [`MathLib`] trait has one method per supported C function. The
//! virtual compiler (`llm4fp-compiler`) chooses which implementation a
//! `CompilerConfig` lowers math calls to.

#![deny(unsafe_code)]
// Math-library polynomial/rational coefficients are written at full
// precision on purpose; the "excess" digits document the approximations.
#![allow(clippy::excessive_precision)]

pub mod device;
pub mod fast;
pub mod host;
pub mod host_variant;
pub mod kernels;
pub mod ulp;

pub use device::DeviceMathLib;
pub use fast::{flush_to_zero, FastMathLib};
pub use host::HostLibm;
pub use host_variant::HostVariantLibm;
pub use ulp::{ulp_distance, ulp_of};

/// A double-precision C math library.
///
/// Every method mirrors the semantics of the corresponding `<math.h>`
/// function, including NaN/Inf propagation and domain errors (returning NaN
/// rather than setting `errno`). Functions that are exact for every input
/// (`fabs`, `floor`, `fmin`, `fma`, ...) have default implementations shared
/// by all libraries, because real host and device libraries agree on them
/// bit for bit as well.
pub trait MathLib: Send + Sync {
    /// Human-readable name used in reports ("host-libm", "device", ...).
    fn name(&self) -> &'static str;

    fn sin(&self, x: f64) -> f64;
    fn cos(&self, x: f64) -> f64;
    fn tan(&self, x: f64) -> f64;
    fn asin(&self, x: f64) -> f64;
    fn acos(&self, x: f64) -> f64;
    fn atan(&self, x: f64) -> f64;
    fn atan2(&self, y: f64, x: f64) -> f64;
    fn sinh(&self, x: f64) -> f64;
    fn cosh(&self, x: f64) -> f64;
    fn tanh(&self, x: f64) -> f64;
    fn exp(&self, x: f64) -> f64;
    fn exp2(&self, x: f64) -> f64;
    fn expm1(&self, x: f64) -> f64;
    fn log(&self, x: f64) -> f64;
    fn log2(&self, x: f64) -> f64;
    fn log10(&self, x: f64) -> f64;
    fn log1p(&self, x: f64) -> f64;
    fn sqrt(&self, x: f64) -> f64;
    fn cbrt(&self, x: f64) -> f64;
    fn pow(&self, x: f64, y: f64) -> f64;
    fn hypot(&self, x: f64, y: f64) -> f64;

    fn fabs(&self, x: f64) -> f64 {
        x.abs()
    }
    fn floor(&self, x: f64) -> f64 {
        x.floor()
    }
    fn ceil(&self, x: f64) -> f64 {
        x.ceil()
    }
    fn trunc(&self, x: f64) -> f64 {
        x.trunc()
    }
    fn round(&self, x: f64) -> f64 {
        x.round()
    }
    fn fmin(&self, x: f64, y: f64) -> f64 {
        // C fmin: if exactly one argument is NaN, return the other one.
        if x.is_nan() {
            y
        } else if y.is_nan() {
            x
        } else {
            x.min(y)
        }
    }
    fn fmax(&self, x: f64, y: f64) -> f64 {
        if x.is_nan() {
            y
        } else if y.is_nan() {
            x
        } else {
            x.max(y)
        }
    }
    fn fmod(&self, x: f64, y: f64) -> f64 {
        if x.is_nan() || y.is_nan() || x.is_infinite() || y == 0.0 {
            f64::NAN
        } else if y.is_infinite() {
            x
        } else {
            x % y
        }
    }
    fn fma(&self, x: f64, y: f64, z: f64) -> f64 {
        x.mul_add(y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fmin_fmax_handle_nan_like_c() {
        let lib = HostLibm::new();
        assert_eq!(lib.fmin(f64::NAN, 2.0), 2.0);
        assert_eq!(lib.fmax(3.0, f64::NAN), 3.0);
        assert!(lib.fmin(f64::NAN, f64::NAN).is_nan());
        assert_eq!(lib.fmin(1.0, 2.0), 1.0);
        assert_eq!(lib.fmax(1.0, 2.0), 2.0);
    }

    #[test]
    fn default_fmod_matches_c_semantics() {
        let lib = HostLibm::new();
        assert_eq!(lib.fmod(5.5, 2.0), 1.5);
        assert_eq!(lib.fmod(-5.5, 2.0), -1.5);
        assert!(lib.fmod(1.0, 0.0).is_nan());
        assert!(lib.fmod(f64::INFINITY, 2.0).is_nan());
        assert_eq!(lib.fmod(3.25, f64::INFINITY), 3.25);
    }

    #[test]
    fn fma_is_fused() {
        let lib = HostLibm::new();
        // A fused multiply-add keeps the low product bits that a separate
        // multiply would round away: (1+2^-27)^2 - 1 differs in the last
        // place depending on whether the square is rounded first.
        let a = 1.0 + 2f64.powi(-27);
        let fused = lib.fma(a, a, -1.0);
        let unfused = a * a - 1.0;
        assert_ne!(fused.to_bits(), unfused.to_bits());
    }

    #[test]
    fn rounding_helpers_are_exact() {
        let lib = HostLibm::new();
        assert_eq!(lib.floor(2.7), 2.0);
        assert_eq!(lib.ceil(2.2), 3.0);
        assert_eq!(lib.trunc(-2.7), -2.0);
        assert_eq!(lib.round(2.5), 3.0);
        assert_eq!(lib.fabs(-0.5), 0.5);
    }
}
