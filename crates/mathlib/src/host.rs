//! The host (reference) math library.
//!
//! Host compilations in the paper link against the GNU C math library. Rust's
//! `f64` methods lower to the platform libm / LLVM intrinsics and therefore
//! play the same role here: the accuracy reference the device and fast-math
//! libraries are measured against.

use crate::MathLib;

/// Reference math library backed by the platform implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostLibm;

impl HostLibm {
    pub fn new() -> Self {
        HostLibm
    }
}

impl MathLib for HostLibm {
    fn name(&self) -> &'static str {
        "host-libm"
    }

    fn sin(&self, x: f64) -> f64 {
        x.sin()
    }
    fn cos(&self, x: f64) -> f64 {
        x.cos()
    }
    fn tan(&self, x: f64) -> f64 {
        x.tan()
    }
    fn asin(&self, x: f64) -> f64 {
        x.asin()
    }
    fn acos(&self, x: f64) -> f64 {
        x.acos()
    }
    fn atan(&self, x: f64) -> f64 {
        x.atan()
    }
    fn atan2(&self, y: f64, x: f64) -> f64 {
        y.atan2(x)
    }
    fn sinh(&self, x: f64) -> f64 {
        x.sinh()
    }
    fn cosh(&self, x: f64) -> f64 {
        x.cosh()
    }
    fn tanh(&self, x: f64) -> f64 {
        x.tanh()
    }
    fn exp(&self, x: f64) -> f64 {
        x.exp()
    }
    fn exp2(&self, x: f64) -> f64 {
        x.exp2()
    }
    fn expm1(&self, x: f64) -> f64 {
        x.exp_m1()
    }
    fn log(&self, x: f64) -> f64 {
        x.ln()
    }
    fn log2(&self, x: f64) -> f64 {
        x.log2()
    }
    fn log10(&self, x: f64) -> f64 {
        x.log10()
    }
    fn log1p(&self, x: f64) -> f64 {
        x.ln_1p()
    }
    fn sqrt(&self, x: f64) -> f64 {
        x.sqrt()
    }
    fn cbrt(&self, x: f64) -> f64 {
        x.cbrt()
    }
    fn pow(&self, x: f64, y: f64) -> f64 {
        x.powf(y)
    }
    fn hypot(&self, x: f64, y: f64) -> f64 {
        x.hypot(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_library_matches_std_bit_for_bit() {
        let lib = HostLibm::new();
        for &x in &[0.1, 1.0, 2.5, -3.7, 100.0, 1e-8] {
            assert_eq!(lib.sin(x).to_bits(), x.sin().to_bits());
            assert_eq!(lib.exp(x).to_bits(), x.exp().to_bits());
            assert_eq!(lib.atan(x).to_bits(), x.atan().to_bits());
        }
        assert_eq!(lib.pow(2.0, 10.0), 1024.0);
        assert_eq!(lib.hypot(3.0, 4.0), 5.0);
    }

    #[test]
    fn host_library_propagates_special_values() {
        let lib = HostLibm::new();
        assert!(lib.sqrt(-1.0).is_nan());
        assert!(lib.log(-1.0).is_nan());
        assert_eq!(lib.exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(lib.exp(f64::INFINITY), f64::INFINITY);
        assert!(lib.sin(f64::NAN).is_nan());
    }

    #[test]
    fn host_library_name() {
        assert_eq!(HostLibm::new().name(), "host-libm");
    }
}
