//! A second host math library, standing in for "a different libm build".
//!
//! The paper's gcc and clang host compilations both link against the GNU C
//! library, yet still disagree on a small fraction of programs at every
//! optimization level (Table 4: 0.03%–0.48% for gcc vs clang below
//! `O3_fastmath`). In practice such host–host differences come from linking
//! against different math library builds/versions or from compilers lowering
//! a few calls to their own runtime helpers. [`HostVariantLibm`] models that:
//! it is bit-identical to [`crate::HostLibm`] for most functions but computes
//! a handful of composite functions (`pow`, `tanh`, `log10`, `expm1`,
//! `cbrt`) through a different (still accurate) decomposition, so the two
//! host personalities differ only occasionally and only by an ULP or two.

use crate::MathLib;

/// Host math library variant used by the `clang` compiler personality.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostVariantLibm;

impl HostVariantLibm {
    pub fn new() -> Self {
        HostVariantLibm
    }
}

impl MathLib for HostVariantLibm {
    fn name(&self) -> &'static str {
        "host-libm-variant"
    }

    fn sin(&self, x: f64) -> f64 {
        x.sin()
    }
    fn cos(&self, x: f64) -> f64 {
        x.cos()
    }
    fn tan(&self, x: f64) -> f64 {
        x.tan()
    }
    fn asin(&self, x: f64) -> f64 {
        x.asin()
    }
    fn acos(&self, x: f64) -> f64 {
        x.acos()
    }
    fn atan(&self, x: f64) -> f64 {
        x.atan()
    }
    fn atan2(&self, y: f64, x: f64) -> f64 {
        y.atan2(x)
    }
    fn sinh(&self, x: f64) -> f64 {
        x.sinh()
    }
    fn cosh(&self, x: f64) -> f64 {
        x.cosh()
    }

    fn tanh(&self, x: f64) -> f64 {
        // Different decomposition: tanh(x) = expm1(2x) / (expm1(2x) + 2).
        if x.is_nan() {
            return x;
        }
        if x.abs() > 20.0 {
            return 1.0f64.copysign(x);
        }
        let em = (2.0 * x.abs()).exp_m1();
        (em / (em + 2.0)).copysign(x)
    }

    fn exp(&self, x: f64) -> f64 {
        x.exp()
    }
    fn exp2(&self, x: f64) -> f64 {
        x.exp2()
    }

    fn expm1(&self, x: f64) -> f64 {
        // Different decomposition for moderate arguments.
        if x.abs() > 0.125 && x.is_finite() {
            x.exp() - 1.0
        } else {
            x.exp_m1()
        }
    }

    fn log(&self, x: f64) -> f64 {
        x.ln()
    }
    fn log2(&self, x: f64) -> f64 {
        x.log2()
    }

    fn log10(&self, x: f64) -> f64 {
        // log10(x) = ln(x) / ln(10) instead of the dedicated routine.
        if x == 0.0 || x.is_nan() || x < 0.0 || x.is_infinite() {
            return x.log10();
        }
        x.ln() * std::f64::consts::LOG10_E
    }

    fn log1p(&self, x: f64) -> f64 {
        x.ln_1p()
    }
    fn sqrt(&self, x: f64) -> f64 {
        x.sqrt()
    }

    fn cbrt(&self, x: f64) -> f64 {
        // exp/log decomposition with a Newton polish step.
        if x == 0.0 || !x.is_finite() {
            return x;
        }
        let ax = x.abs();
        let mut y = (ax.ln() / 3.0).exp();
        y = (2.0 * y + ax / (y * y)) / 3.0;
        y.copysign(x)
    }

    fn pow(&self, x: f64, y: f64) -> f64 {
        // exp2/log2 decomposition for the general positive-base case; all
        // special cases defer to the reference implementation (they are
        // exact and every library agrees on them).
        if x > 0.0 && x.is_finite() && y.is_finite() && y != 0.0 && x != 1.0 {
            let prod = y * x.log2();
            if prod.abs() < 1000.0 {
                return prod.exp2();
            }
        }
        x.powf(y)
    }

    fn hypot(&self, x: f64, y: f64) -> f64 {
        x.hypot(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp::{relative_error, ulp_distance};
    use crate::HostLibm;

    #[test]
    fn variant_agrees_bitwise_on_most_functions() {
        let a = HostLibm::new();
        let b = HostVariantLibm::new();
        for i in 1..200 {
            let x = (i as f64) * 0.173 - 17.0;
            assert_eq!(a.sin(x).to_bits(), b.sin(x).to_bits());
            assert_eq!(a.exp(x).to_bits(), b.exp(x).to_bits());
            assert_eq!(a.atan(x).to_bits(), b.atan(x).to_bits());
            if x > 0.0 {
                assert_eq!(a.log(x).to_bits(), b.log(x).to_bits());
                assert_eq!(a.sqrt(x).to_bits(), b.sqrt(x).to_bits());
            }
        }
    }

    #[test]
    fn variant_differs_slightly_on_composite_functions() {
        let a = HostLibm::new();
        let b = HostVariantLibm::new();
        let mut differing = 0;
        for i in 1..500 {
            let x = (i as f64) * 0.0713 + 0.01;
            for (va, vb) in [
                (a.pow(x, 1.7), b.pow(x, 1.7)),
                (a.tanh(x - 10.0), b.tanh(x - 10.0)),
                (a.log10(x), b.log10(x)),
                (a.cbrt(x), b.cbrt(x)),
                (a.expm1(x - 5.0), b.expm1(x - 5.0)),
            ] {
                // Always numerically close ...
                assert!(relative_error(vb, va) < 1e-12, "x={x}: {vb} vs {va}");
                assert!(ulp_distance(va, vb) <= 64, "x={x}");
                // ... but not always bit-identical.
                if va.to_bits() != vb.to_bits() {
                    differing += 1;
                }
            }
        }
        assert!(differing > 20, "variant library never disagrees ({differing})");
    }

    #[test]
    fn variant_preserves_special_cases() {
        let b = HostVariantLibm::new();
        assert_eq!(b.pow(2.0, 0.0), 1.0);
        assert_eq!(b.pow(0.0, 3.0), 0.0);
        assert!(b.pow(-2.0, 0.5).is_nan());
        assert_eq!(b.pow(-2.0, 3.0), -8.0);
        assert!(b.log10(-1.0).is_nan());
        assert_eq!(b.tanh(1e9), 1.0);
        assert_eq!(b.cbrt(0.0), 0.0);
        assert_eq!(b.cbrt(-8.0), -2.0);
    }
}
