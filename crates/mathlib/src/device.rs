//! The device math library: an independent, from-scratch implementation
//! standing in for the CUDA math library.
//!
//! Accuracy target: a small number of ULP on the ranges generated programs
//! exercise — close enough to be a credible math library, far enough from
//! the host library that host/device compilations of the same program
//! routinely differ in the last bits, exactly like real `libm` vs
//! `libcudart` (this is the mechanism behind the paper's RQ3 finding that
//! host–device pairs show the highest inconsistency rates).

use crate::kernels::{
    cos_kernel, exp_kernel, horner, log_kernel, pow2i, reduce_pio2, split_mantissa_exp, LN2_HI,
    LN2_LO, LOG2_E,
};
use crate::MathLib;

/// Device (CUDA-like) math library.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceMathLib;

impl DeviceMathLib {
    pub fn new() -> Self {
        DeviceMathLib
    }

    fn sin_cos(&self, x: f64) -> (f64, f64) {
        if x.is_nan() || x.is_infinite() {
            return (f64::NAN, f64::NAN);
        }
        let (k, r) = reduce_pio2(x);
        let s = crate::kernels::sin_kernel(r);
        let c = cos_kernel(r);
        match k.rem_euclid(4) {
            0 => (s, c),
            1 => (c, -s),
            2 => (-s, -c),
            _ => (-c, s),
        }
    }
}

impl MathLib for DeviceMathLib {
    fn name(&self) -> &'static str {
        "device"
    }

    fn sin(&self, x: f64) -> f64 {
        self.sin_cos(x).0
    }

    fn cos(&self, x: f64) -> f64 {
        self.sin_cos(x).1
    }

    fn tan(&self, x: f64) -> f64 {
        if x.is_nan() || x.is_infinite() {
            return f64::NAN;
        }
        let (s, c) = self.sin_cos(x);
        s / c
    }

    fn asin(&self, x: f64) -> f64 {
        if x.is_nan() || x.abs() > 1.0 {
            return f64::NAN;
        }
        if x.abs() == 1.0 {
            return std::f64::consts::FRAC_PI_2.copysign(x);
        }
        self.atan2(x, self.sqrt(1.0 - x * x))
    }

    fn acos(&self, x: f64) -> f64 {
        if x.is_nan() || x.abs() > 1.0 {
            return f64::NAN;
        }
        if x == 1.0 {
            return 0.0;
        }
        if x == -1.0 {
            return std::f64::consts::PI;
        }
        self.atan2(self.sqrt(1.0 - x * x), x)
    }

    fn atan(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if x.is_infinite() {
            return std::f64::consts::FRAC_PI_2.copysign(x);
        }
        let neg = x < 0.0;
        let ax = x.abs();
        // Range reduction to |t| ≤ tan(pi/8) using two identities:
        //   atan(x) = pi/2 - atan(1/x)            for x > 1
        //   atan(t) = pi/4 + atan((t-1)/(t+1))    for t > tan(pi/8)
        let inverted = ax > 1.0;
        let t = if inverted { 1.0 / ax } else { ax };
        let shifted = t > 0.414_213_562_373_095_048_8;
        let t = if shifted { (t - 1.0) / (t + 1.0) } else { t };
        let z = t * t;
        // atan(t) = t - t^3/3 + t^5/5 - ... (|t| ≤ tan(pi/8), 17 terms).
        const A: [f64; 16] = [
            -1.0 / 33.0,
            1.0 / 31.0,
            -1.0 / 29.0,
            1.0 / 27.0,
            -1.0 / 25.0,
            1.0 / 23.0,
            -1.0 / 21.0,
            1.0 / 19.0,
            -1.0 / 17.0,
            1.0 / 15.0,
            -1.0 / 13.0,
            1.0 / 11.0,
            -1.0 / 9.0,
            1.0 / 7.0,
            -1.0 / 5.0,
            1.0 / 3.0,
        ];
        let series = t - t * z * horner(z, &A);
        let mut result = series;
        if shifted {
            result += std::f64::consts::FRAC_PI_4;
        }
        if inverted {
            result = std::f64::consts::FRAC_PI_2 - result;
        }
        if neg {
            result = -result;
        }
        result
    }

    fn atan2(&self, y: f64, x: f64) -> f64 {
        use std::f64::consts::{FRAC_PI_2, PI};
        if x.is_nan() || y.is_nan() {
            return f64::NAN;
        }
        if y == 0.0 {
            return if x.is_sign_negative() { PI.copysign(y) } else { 0.0f64.copysign(y) };
        }
        if x == 0.0 {
            return FRAC_PI_2.copysign(y);
        }
        if x.is_infinite() {
            return match (x > 0.0, y > 0.0) {
                (true, true) => {
                    if y.is_infinite() {
                        PI / 4.0
                    } else {
                        0.0
                    }
                }
                (true, false) => {
                    if y.is_infinite() {
                        -PI / 4.0
                    } else {
                        -0.0
                    }
                }
                (false, true) => {
                    if y.is_infinite() {
                        3.0 * PI / 4.0
                    } else {
                        PI
                    }
                }
                (false, false) => {
                    if y.is_infinite() {
                        -3.0 * PI / 4.0
                    } else {
                        -PI
                    }
                }
            };
        }
        if y.is_infinite() {
            return FRAC_PI_2.copysign(y);
        }
        let base = self.atan(y / x);
        if x > 0.0 {
            base
        } else if y > 0.0 {
            base + PI
        } else {
            base - PI
        }
    }

    fn sinh(&self, x: f64) -> f64 {
        if x.is_nan() || x.is_infinite() {
            return x;
        }
        let ax = x.abs();
        if ax < 0.5 {
            // sinh(x) = x + x^3/3! + x^5/5! + ...
            let z = x * x;
            const S: [f64; 5] = [1.0 / 362_880.0, 1.0 / 5_040.0, 1.0 / 120.0, 1.0 / 6.0, 1.0];
            return x * horner(z, &S);
        }
        let e = self.exp(ax);
        let v = 0.5 * (e - 1.0 / e);
        v.copysign(x)
    }

    fn cosh(&self, x: f64) -> f64 {
        if x.is_nan() {
            return x;
        }
        let e = self.exp(x.abs());
        if e.is_infinite() {
            return f64::INFINITY;
        }
        0.5 * (e + 1.0 / e)
    }

    fn tanh(&self, x: f64) -> f64 {
        if x.is_nan() {
            return x;
        }
        let ax = x.abs();
        if ax > 20.0 {
            return 1.0f64.copysign(x);
        }
        // tanh(x) = expm1(2x) / (expm1(2x) + 2)
        let em = self.expm1(2.0 * ax);
        (em / (em + 2.0)).copysign(x)
    }

    fn exp(&self, x: f64) -> f64 {
        if x.is_nan() {
            return x;
        }
        if x > 709.782712893384 {
            return f64::INFINITY;
        }
        if x < -745.2 {
            return 0.0;
        }
        let k = (x * LOG2_E).round();
        let r = (x - k * LN2_HI) - k * LN2_LO;
        pow2i(k as i64) * exp_kernel(r)
    }

    fn exp2(&self, x: f64) -> f64 {
        if x.is_nan() {
            return x;
        }
        if x > 1024.0 {
            return f64::INFINITY;
        }
        if x < -1075.0 {
            return 0.0;
        }
        let k = x.round();
        let r = x - k;
        // 2^r = e^(r ln 2)
        let rr = r * LN2_HI + r * LN2_LO;
        pow2i(k as i64) * exp_kernel(rr)
    }

    fn expm1(&self, x: f64) -> f64 {
        if x.is_nan() || x == f64::INFINITY {
            return x;
        }
        if x == f64::NEG_INFINITY {
            return -1.0;
        }
        if x.abs() < 0.35 {
            // x + x^2/2! + x^3/3! + ...
            const E: [f64; 10] = [
                1.0 / 3_628_800.0,
                1.0 / 362_880.0,
                1.0 / 40_320.0,
                1.0 / 5_040.0,
                1.0 / 720.0,
                1.0 / 120.0,
                1.0 / 24.0,
                1.0 / 6.0,
                0.5,
                1.0,
            ];
            return x * horner(x, &E);
        }
        self.exp(x) - 1.0
    }

    fn log(&self, x: f64) -> f64 {
        if x.is_nan() {
            return x;
        }
        if x < 0.0 {
            return f64::NAN;
        }
        if x == 0.0 {
            return f64::NEG_INFINITY;
        }
        if x.is_infinite() {
            return f64::INFINITY;
        }
        let (mut m, mut e) = split_mantissa_exp(x);
        if m > std::f64::consts::SQRT_2 {
            m *= 0.5;
            e += 1;
        }
        let ef = e as f64;
        ef * LN2_HI + (log_kernel(m) + ef * LN2_LO)
    }

    fn log2(&self, x: f64) -> f64 {
        if x.is_nan() || x < 0.0 {
            return if x < 0.0 { f64::NAN } else { x };
        }
        if x == 0.0 {
            return f64::NEG_INFINITY;
        }
        if x.is_infinite() {
            return f64::INFINITY;
        }
        let (mut m, mut e) = split_mantissa_exp(x);
        if m > std::f64::consts::SQRT_2 {
            m *= 0.5;
            e += 1;
        }
        e as f64 + log_kernel(m) * LOG2_E
    }

    fn log10(&self, x: f64) -> f64 {
        self.log(x) * std::f64::consts::LOG10_E
    }

    fn log1p(&self, x: f64) -> f64 {
        if x.is_nan() || x == f64::INFINITY {
            return x;
        }
        if x < -1.0 {
            return f64::NAN;
        }
        if x == -1.0 {
            return f64::NEG_INFINITY;
        }
        if x.abs() < 0.5 {
            // log1p(x) = 2 atanh(x / (2 + x))
            let s = x / (2.0 + x);
            let z = s * s;
            const L: [f64; 7] =
                [1.0 / 15.0, 1.0 / 13.0, 1.0 / 11.0, 1.0 / 9.0, 1.0 / 7.0, 1.0 / 5.0, 1.0 / 3.0];
            return 2.0 * (s + s * z * horner(z, &L));
        }
        self.log(1.0 + x)
    }

    fn sqrt(&self, x: f64) -> f64 {
        // IEEE-754 requires a correctly rounded square root and CUDA complies
        // (outside --use_fast_math), so host and device agree here.
        x.sqrt()
    }

    fn cbrt(&self, x: f64) -> f64 {
        if x == 0.0 || x.is_nan() || x.is_infinite() {
            return x;
        }
        let neg = x < 0.0;
        let ax = x.abs();
        // Initial guess from the exponent, then Newton iterations.
        let (m, e) = split_mantissa_exp(ax);
        let approx_exp = (e as f64) / 3.0;
        let mut y = m.powf(1.0 / 3.0) * 2f64.powf(approx_exp);
        for _ in 0..4 {
            y = (2.0 * y + ax / (y * y)) / 3.0;
        }
        if neg {
            -y
        } else {
            y
        }
    }

    fn pow(&self, x: f64, y: f64) -> f64 {
        // C99 special cases.
        if y == 0.0 || x == 1.0 {
            return 1.0;
        }
        if x.is_nan() || y.is_nan() {
            return f64::NAN;
        }
        if x == 0.0 {
            let odd = is_odd_integer(y);
            return if y > 0.0 {
                if odd {
                    0.0f64.copysign(x)
                } else {
                    0.0
                }
            } else if odd {
                f64::INFINITY.copysign(x)
            } else {
                f64::INFINITY
            };
        }
        if x.is_infinite() || y.is_infinite() {
            return host_pow_special(x, y);
        }
        if x < 0.0 {
            if y.fract() != 0.0 {
                return f64::NAN;
            }
            let magnitude = self.pow(-x, y);
            return if is_odd_integer(y) { -magnitude } else { magnitude };
        }
        // General case: x^y = 2^(y * log2(x)).
        let l = self.log2(x);
        let prod = y * l;
        if prod > 1024.0 {
            return f64::INFINITY;
        }
        if prod < -1075.0 {
            return 0.0;
        }
        self.exp2(prod)
    }

    fn hypot(&self, x: f64, y: f64) -> f64 {
        if x.is_infinite() || y.is_infinite() {
            return f64::INFINITY;
        }
        if x.is_nan() || y.is_nan() {
            return f64::NAN;
        }
        let (ax, ay) = (x.abs(), y.abs());
        let (hi, lo) = if ax > ay { (ax, ay) } else { (ay, ax) };
        if hi == 0.0 {
            return 0.0;
        }
        let ratio = lo / hi;
        hi * self.sqrt(1.0 + ratio * ratio)
    }
}

fn is_odd_integer(y: f64) -> bool {
    y.fract() == 0.0 && (y.abs() % 2.0) == 1.0
}

fn host_pow_special(x: f64, y: f64) -> f64 {
    // Delegate the IEEE infinity cases to the host implementation: these are
    // exact (no rounding), so real device libraries agree with the host here.
    x.powf(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp::{relative_error, ulp_distance};
    use crate::HostLibm;

    const MODERATE: &[f64] = &[
        -50.0, -12.345, -3.2, -1.0, -0.75, -0.1, -1e-5, 1e-5, 0.1, 0.5, 0.9, 1.0, 1.5, 2.0, 3.7,
        7.77, 25.0, 123.456, 700.0,
    ];

    #[test]
    fn device_exp_log_are_accurate_but_not_identical() {
        let dev = DeviceMathLib::new();
        let host = HostLibm::new();
        let mut differing = 0;
        for &x in MODERATE {
            let (d, h) = (dev.exp(x), host.exp(x));
            assert!(relative_error(d, h) < 1e-13, "exp({x}): {d} vs {h}");
            if d.to_bits() != h.to_bits() {
                differing += 1;
            }
            if x > 0.0 {
                let (d, h) = (dev.log(x), host.log(x));
                assert!(relative_error(d, h) < 1e-13, "log({x}): {d} vs {h}");
                if d.to_bits() != h.to_bits() {
                    differing += 1;
                }
            }
        }
        // The device library must actually disagree with the host library in
        // the last bits for at least some inputs — that is its whole purpose.
        assert!(differing > 0, "device library is bit-identical to host");
    }

    #[test]
    fn device_trig_is_accurate_over_moderate_range() {
        let dev = DeviceMathLib::new();
        for i in -1000..=1000 {
            let x = (i as f64) * 0.123;
            assert!(relative_error(dev.sin(x), x.sin()) < 1e-12, "sin({x})");
            assert!(relative_error(dev.cos(x), x.cos()) < 1e-12, "cos({x})");
        }
        for i in -100..=100 {
            let x = (i as f64) * 0.031 + 0.005;
            assert!(relative_error(dev.tan(x), x.tan()) < 1e-11, "tan({x})");
        }
    }

    #[test]
    fn device_inverse_trig_matches_host_closely() {
        let dev = DeviceMathLib::new();
        for i in -100..=100 {
            let x = (i as f64) / 100.0;
            assert!(relative_error(dev.asin(x), x.asin()) < 1e-12, "asin({x})");
            assert!(relative_error(dev.acos(x), x.acos()) < 1e-12, "acos({x})");
        }
        for i in -200..=200 {
            let x = (i as f64) * 0.11;
            assert!(relative_error(dev.atan(x), x.atan()) < 1e-12, "atan({x})");
        }
        for &(y, x) in &[(1.0, 1.0), (-2.0, 3.0), (5.0, -1.0), (-0.5, -0.25), (3.0, 0.0)] {
            assert!(
                relative_error(dev.atan2(y, x), y.atan2(x)) < 1e-12,
                "atan2({y},{x}) = {} vs {}",
                dev.atan2(y, x),
                y.atan2(x)
            );
        }
    }

    #[test]
    fn device_hyperbolics_and_expm1_log1p() {
        let dev = DeviceMathLib::new();
        for &x in MODERATE {
            if x.abs() < 300.0 {
                assert!(relative_error(dev.sinh(x), x.sinh()) < 1e-12, "sinh({x})");
                assert!(relative_error(dev.cosh(x), x.cosh()) < 1e-12, "cosh({x})");
            }
            assert!(relative_error(dev.tanh(x), x.tanh()) < 1e-12, "tanh({x})");
            assert!(relative_error(dev.expm1(x.min(300.0)), x.min(300.0).exp_m1()) < 1e-12);
            if x > -1.0 {
                assert!(relative_error(dev.log1p(x), x.ln_1p()) < 1e-12, "log1p({x})");
            }
        }
    }

    #[test]
    fn device_pow_cbrt_hypot() {
        let dev = DeviceMathLib::new();
        for &(x, y) in &[(2.0, 10.0), (3.0, -2.5), (0.5, 0.5), (10.0, 30.0), (1.5, 100.0)] {
            assert!(relative_error(dev.pow(x, y), x.powf(y)) < 1e-12, "pow({x},{y})");
        }
        assert_eq!(dev.pow(-2.0, 3.0), -8.0);
        assert_eq!(dev.pow(-2.0, 2.0), 4.0);
        assert!(dev.pow(-2.0, 0.5).is_nan());
        assert_eq!(dev.pow(0.0, 5.0), 0.0);
        assert_eq!(dev.pow(0.0, -2.0), f64::INFINITY);
        assert_eq!(dev.pow(7.0, 0.0), 1.0);
        for &x in &[8.0, -27.0, 0.001, 12345.6] {
            assert!(relative_error(dev.cbrt(x), x.cbrt()) < 1e-13, "cbrt({x})");
        }
        assert!(relative_error(dev.hypot(3e200, 4e200), 5e200) < 1e-13);
        assert!(relative_error(dev.hypot(-3.0, 4.0), 5.0) < 1e-14);
    }

    #[test]
    fn device_handles_special_values_like_the_host() {
        let dev = DeviceMathLib::new();
        assert!(dev.sin(f64::NAN).is_nan());
        assert!(dev.sin(f64::INFINITY).is_nan());
        assert!(dev.log(-1.0).is_nan());
        assert_eq!(dev.log(0.0), f64::NEG_INFINITY);
        assert_eq!(dev.exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(dev.exp(1000.0), f64::INFINITY);
        assert_eq!(dev.exp2(-2000.0), 0.0);
        assert!(dev.asin(1.5).is_nan());
        assert_eq!(dev.tanh(1e300), 1.0);
        assert_eq!(dev.atan(f64::INFINITY), std::f64::consts::FRAC_PI_2);
        assert!(dev.hypot(f64::NAN, 1.0).is_nan());
        assert_eq!(dev.hypot(f64::INFINITY, f64::NAN), f64::INFINITY);
        assert_eq!(dev.log1p(-1.0), f64::NEG_INFINITY);
        assert!(dev.log1p(-2.0).is_nan());
    }

    #[test]
    fn device_sqrt_is_correctly_rounded() {
        let dev = DeviceMathLib::new();
        for &x in &[2.0, 3.0, 0.1, 1e300, 1e-300] {
            assert_eq!(dev.sqrt(x).to_bits(), x.sqrt().to_bits());
        }
    }

    #[test]
    fn device_stays_within_a_few_ulp_on_random_inputs() {
        let dev = DeviceMathLib::new();
        // Deterministic pseudo-random walk over a wide range of magnitudes.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..2000 {
            let u = next();
            let x = (u - 0.5) * 200.0;
            // sin is measured in relative error because near its zeros the
            // reduction error (identical in spirit to single-double libm
            // implementations) dominates the tiny result magnitude.
            assert!(relative_error(dev.sin(x), x.sin()) < 1e-13, "sin({x})");
            assert!(ulp_distance(dev.exp(x.min(700.0)), x.min(700.0).exp()) <= 8, "exp({x})");
            let p = u * 1000.0 + 1e-9;
            assert!(ulp_distance(dev.log(p), p.ln()) <= 8, "log({p})");
        }
    }
}
