//! The fast-math library: low-accuracy approximations standing in for the
//! function replacements performed under `-ffast-math` (gcc/clang) and
//! `--use_fast_math` (nvcc), plus flush-to-zero helpers.
//!
//! Real fast-math modes swap calls like `sin`, `exp`, `pow` or `1/x` for
//! hardware approximation instructions or short polynomial kernels that are
//! accurate to tens of bits rather than to half a ULP, and flush subnormal
//! values to zero. The `O3_fastmath` level of the virtual compiler lowers
//! math calls to this library, which is why that level produces the largest
//! and most frequent inconsistencies (Tables 3–5 of the paper).

use crate::kernels::{horner, pow2i, split_mantissa_exp, LN2, LOG2_E, TWO_OVER_PI};
use crate::MathLib;

/// Flush subnormal values to (signed) zero, as device fast-math and
/// `-ffast-math -mdaz-ftz` style compilations do.
pub fn flush_to_zero(x: f64) -> f64 {
    if x != 0.0 && x.abs() < f64::MIN_POSITIVE {
        0.0f64.copysign(x)
    } else {
        x
    }
}

/// Fast-math function library (low-accuracy approximations).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastMathLib;

impl FastMathLib {
    pub fn new() -> Self {
        FastMathLib
    }

    /// Fast reciprocal square root: bit-level initial guess plus two Newton
    /// iterations (roughly 40 correct bits).
    pub fn rsqrt(&self, x: f64) -> f64 {
        if x < 0.0 {
            return f64::NAN;
        }
        if x == 0.0 {
            return f64::INFINITY;
        }
        if !x.is_finite() {
            return if x.is_nan() { x } else { 0.0 };
        }
        let i = 0x5fe6_eb50_c7b5_37a9u64.wrapping_sub(x.to_bits() >> 1);
        let mut y = f64::from_bits(i);
        for _ in 0..3 {
            y *= 1.5 - 0.5 * x * y * y;
        }
        y
    }

    /// Fast reciprocal (used by the virtual compiler when fast-math rewrites
    /// division into multiplication by an approximate reciprocal).
    pub fn approx_recip(&self, x: f64) -> f64 {
        if x == 0.0 {
            return f64::INFINITY.copysign(x);
        }
        if !x.is_finite() {
            return if x.is_nan() { x } else { 0.0f64.copysign(x) };
        }
        let r = self.rsqrt(x.abs());
        (r * r).copysign(x)
    }

    fn exp2_fast(&self, x: f64) -> f64 {
        if x.is_nan() {
            return x;
        }
        if x > 1024.0 {
            return f64::INFINITY;
        }
        if x < -1075.0 {
            return 0.0;
        }
        let k = x.floor();
        let r = x - k; // in [0, 1)
                       // 2^r = e^(r ln 2), short Taylor kernel (relative error ~1e-6).
        let t = r * LN2;
        const P: [f64; 8] =
            [1.0 / 5_040.0, 1.0 / 720.0, 1.0 / 120.0, 1.0 / 24.0, 1.0 / 6.0, 0.5, 1.0, 1.0];
        pow2i(k as i64) * horner(t, &P)
    }

    fn log2_fast(&self, x: f64) -> f64 {
        if x.is_nan() {
            return x;
        }
        if x < 0.0 {
            return f64::NAN;
        }
        if x == 0.0 {
            return f64::NEG_INFINITY;
        }
        if x.is_infinite() {
            return f64::INFINITY;
        }
        let (mut m, mut e) = split_mantissa_exp(x);
        if m > std::f64::consts::SQRT_2 {
            m *= 0.5;
            e += 1;
        }
        // Short atanh-series kernel: ln(m) ≈ 2(s + s³/3 + s⁵/5 + s⁷/7),
        // relative error ~1e-8 — far less accurate than the device kernel.
        let s = (m - 1.0) / (m + 1.0);
        let z = s * s;
        const P: [f64; 4] = [1.0 / 7.0, 1.0 / 5.0, 1.0 / 3.0, 1.0];
        let ln_m = 2.0 * s * horner(z, &P);
        e as f64 + ln_m * LOG2_E
    }
}

impl MathLib for FastMathLib {
    fn name(&self) -> &'static str {
        "fast-math"
    }

    fn sin(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return f64::NAN;
        }
        // Single-constant reduction (loses accuracy for large |x|, exactly
        // like hardware fast paths) followed by a degree-7 polynomial.
        let k = (x * TWO_OVER_PI).round();
        let r = x - k * std::f64::consts::FRAC_PI_2;
        let (r, quadrant) = (r, (k as i64).rem_euclid(4));
        let s = sin_poly7(r);
        let c = cos_poly6(r);
        match quadrant {
            0 => s,
            1 => c,
            2 => -s,
            _ => -c,
        }
    }

    fn cos(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return f64::NAN;
        }
        let k = (x * TWO_OVER_PI).round();
        let r = x - k * std::f64::consts::FRAC_PI_2;
        let s = sin_poly7(r);
        let c = cos_poly6(r);
        match (k as i64).rem_euclid(4) {
            0 => c,
            1 => -s,
            2 => -c,
            _ => s,
        }
    }

    fn tan(&self, x: f64) -> f64 {
        self.sin(x) / self.cos(x)
    }

    fn asin(&self, x: f64) -> f64 {
        if x.abs() > 1.0 || x.is_nan() {
            return f64::NAN;
        }
        self.atan2(x, (1.0 - x * x).sqrt())
    }

    fn acos(&self, x: f64) -> f64 {
        if x.abs() > 1.0 || x.is_nan() {
            return f64::NAN;
        }
        std::f64::consts::FRAC_PI_2 - self.asin(x)
    }

    fn atan(&self, x: f64) -> f64 {
        if x.is_nan() {
            return x;
        }
        if x.is_infinite() {
            return std::f64::consts::FRAC_PI_2.copysign(x);
        }
        let ax = x.abs();
        let inverted = ax > 1.0;
        let t = if inverted { 1.0 / ax } else { ax };
        // Degree-9 odd polynomial approximation on [0, 1] (~1e-5 absolute).
        let z = t * t;
        const P: [f64; 5] = [
            0.020_835_298_262_888_36,
            -0.085_133_048_650_767_97,
            0.180_141_838_817_674_46,
            -0.330_299_352_260_267_2,
            0.999_866_236_031_842_8,
        ];
        let r = t * horner(z, &P);
        let r = if inverted { std::f64::consts::FRAC_PI_2 - r } else { r };
        r.copysign(x)
    }

    fn atan2(&self, y: f64, x: f64) -> f64 {
        use std::f64::consts::PI;
        if x.is_nan() || y.is_nan() {
            return f64::NAN;
        }
        if x == 0.0 && y == 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return std::f64::consts::FRAC_PI_2.copysign(y);
        }
        let base = self.atan(y / x);
        if x > 0.0 {
            base
        } else if y >= 0.0 {
            base + PI
        } else {
            base - PI
        }
    }

    fn sinh(&self, x: f64) -> f64 {
        let e = self.exp(x);
        0.5 * (e - 1.0 / e)
    }

    fn cosh(&self, x: f64) -> f64 {
        let e = self.exp(x);
        0.5 * (e + 1.0 / e)
    }

    fn tanh(&self, x: f64) -> f64 {
        if x.is_nan() {
            return x;
        }
        if x.abs() > 19.0 {
            return 1.0f64.copysign(x);
        }
        let e = self.exp(2.0 * x);
        (e - 1.0) / (e + 1.0)
    }

    fn exp(&self, x: f64) -> f64 {
        self.exp2_fast(x * LOG2_E)
    }

    fn exp2(&self, x: f64) -> f64 {
        self.exp2_fast(x)
    }

    fn expm1(&self, x: f64) -> f64 {
        self.exp(x) - 1.0
    }

    fn log(&self, x: f64) -> f64 {
        self.log2_fast(x) * LN2
    }

    fn log2(&self, x: f64) -> f64 {
        self.log2_fast(x)
    }

    fn log10(&self, x: f64) -> f64 {
        self.log2_fast(x) * std::f64::consts::LN_2 * std::f64::consts::LOG10_E
    }

    fn log1p(&self, x: f64) -> f64 {
        self.log(1.0 + x)
    }

    fn sqrt(&self, x: f64) -> f64 {
        // Approximate square root: x * rsqrt(x) with the Newton-refined
        // reciprocal square root (not correctly rounded, unlike IEEE sqrt).
        if x == 0.0 || x.is_nan() || x == f64::INFINITY {
            return if x.is_sign_negative() && x != 0.0 { f64::NAN } else { x };
        }
        if x < 0.0 {
            return f64::NAN;
        }
        x * self.rsqrt(x)
    }

    fn cbrt(&self, x: f64) -> f64 {
        if x == 0.0 || !x.is_finite() {
            return x;
        }
        let neg = x < 0.0;
        let ax = x.abs();
        let y = self.exp2(self.log2(ax) / 3.0);
        if neg {
            -y
        } else {
            y
        }
    }

    fn pow(&self, x: f64, y: f64) -> f64 {
        if y == 0.0 {
            return 1.0;
        }
        if x == 1.0 {
            return 1.0;
        }
        if x.is_nan() || y.is_nan() {
            return f64::NAN;
        }
        if x < 0.0 {
            // Fast-math pow does not handle the negative-base integer cases;
            // computing through log yields NaN, mirroring __powf behaviour.
            return f64::NAN;
        }
        if x == 0.0 {
            return if y > 0.0 { 0.0 } else { f64::INFINITY };
        }
        self.exp2(y * self.log2(x))
    }

    fn hypot(&self, x: f64, y: f64) -> f64 {
        // Naive formula: overflows for large inputs, exactly the kind of
        // shortcut fast-math implementations take.
        self.sqrt(x * x + y * y)
    }
}

/// sin(r) for |r| ≤ π/4 with a short truncated Taylor polynomial
/// (degree 7; relative error ~4e-7 on the interval).
fn sin_poly7(r: f64) -> f64 {
    const S: [f64; 3] = [-1.0 / 5_040.0, 1.0 / 120.0, -1.0 / 6.0];
    let z = r * r;
    r + r * z * horner(z, &S)
}

/// cos(r) for |r| ≤ π/4 with a short truncated Taylor polynomial
/// (degree 6; absolute error ~4e-6 on the interval).
fn cos_poly6(r: f64) -> f64 {
    const C: [f64; 3] = [-1.0 / 720.0, 1.0 / 24.0, -0.5];
    let z = r * r;
    1.0 + z * horner(z, &C)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp::relative_error;
    use crate::{DeviceMathLib, HostLibm};

    #[test]
    fn flush_to_zero_only_affects_subnormals() {
        assert_eq!(flush_to_zero(1.0), 1.0);
        assert_eq!(flush_to_zero(f64::MIN_POSITIVE), f64::MIN_POSITIVE);
        assert_eq!(flush_to_zero(f64::MIN_POSITIVE / 2.0), 0.0);
        assert_eq!(flush_to_zero(-f64::MIN_POSITIVE / 4.0), -0.0);
        assert!(flush_to_zero(-f64::MIN_POSITIVE / 4.0).is_sign_negative());
        assert_eq!(flush_to_zero(0.0), 0.0);
        assert!(flush_to_zero(f64::NAN).is_nan());
        assert_eq!(flush_to_zero(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn fast_functions_are_roughly_right_but_less_accurate() {
        let fast = FastMathLib::new();
        let host = HostLibm::new();
        let mut total_fast_err = 0.0;
        let mut total_dev_err = 0.0;
        let dev = DeviceMathLib::new();
        for i in 1..200 {
            let x = (i as f64) * 0.11;
            for (f, h, d) in [
                (fast.sin(x), host.sin(x), dev.sin(x)),
                (fast.exp(x.min(30.0)), host.exp(x.min(30.0)), dev.exp(x.min(30.0))),
                (fast.log(x), host.log(x), dev.log(x)),
                (fast.sqrt(x), host.sqrt(x), dev.sqrt(x)),
            ] {
                let fe = relative_error(f, h);
                assert!(fe < 2e-3, "fast result too far off at x={x}: {f} vs {h}");
                total_fast_err += fe;
                total_dev_err += relative_error(d, h);
            }
        }
        // The fast library must be markedly less accurate than the device
        // library — that asymmetry is what makes O3_fastmath special.
        assert!(total_fast_err > 100.0 * total_dev_err);
        assert!(total_fast_err > 0.0);
    }

    #[test]
    fn fast_sqrt_is_not_correctly_rounded() {
        let fast = FastMathLib::new();
        let mut differs = 0;
        for i in 1..500 {
            let x = (i as f64) * 0.37;
            if fast.sqrt(x).to_bits() != x.sqrt().to_bits() {
                differs += 1;
            }
        }
        assert!(differs > 100, "fast sqrt should differ from IEEE sqrt frequently");
    }

    #[test]
    fn rsqrt_and_recip_are_close() {
        let fast = FastMathLib::new();
        for &x in &[0.25, 1.0, 2.0, 9.0, 1e6, 1e-6] {
            assert!(relative_error(fast.rsqrt(x), 1.0 / x.sqrt()) < 1e-6, "rsqrt({x})");
            assert!(relative_error(fast.approx_recip(x), 1.0 / x) < 1e-6, "recip({x})");
        }
        assert!(relative_error(fast.approx_recip(-4.0), -0.25) < 1e-6);
        assert_eq!(fast.rsqrt(0.0), f64::INFINITY);
        assert!(fast.rsqrt(-1.0).is_nan());
        assert_eq!(fast.approx_recip(f64::INFINITY), 0.0);
    }

    #[test]
    fn fast_pow_drops_negative_base_support() {
        let fast = FastMathLib::new();
        assert!(fast.pow(-2.0, 2.0).is_nan());
        assert_eq!(fast.pow(2.0, 0.0), 1.0);
        assert!(relative_error(fast.pow(2.0, 10.0), 1024.0) < 1e-5);
        assert_eq!(fast.pow(0.0, -1.0), f64::INFINITY);
    }

    #[test]
    fn fast_hypot_overflows_where_host_does_not() {
        let fast = FastMathLib::new();
        let host = HostLibm::new();
        assert!(host.hypot(1e200, 1e200).is_finite());
        assert!(fast.hypot(1e200, 1e200).is_infinite());
    }

    #[test]
    fn fast_special_values() {
        let fast = FastMathLib::new();
        assert!(fast.sin(f64::INFINITY).is_nan());
        assert!(fast.log(-1.0).is_nan());
        assert_eq!(fast.log(0.0), f64::NEG_INFINITY);
        assert_eq!(fast.exp(-10000.0), 0.0);
        assert_eq!(fast.exp(10000.0), f64::INFINITY);
        assert_eq!(fast.tanh(100.0), 1.0);
        assert!(fast.asin(2.0).is_nan());
        assert!(fast.sqrt(-1.0).is_nan());
    }

    #[test]
    fn fast_trig_inverse_and_hyperbolic_rough_accuracy() {
        let fast = FastMathLib::new();
        for i in -20..=20 {
            let x = (i as f64) * 0.09;
            assert!((fast.atan(x) - x.atan()).abs() < 1e-4, "atan({x})");
            assert!((fast.tanh(x) - x.tanh()).abs() < 1e-4, "tanh({x})");
            if x.abs() <= 1.0 {
                assert!((fast.asin(x) - x.asin()).abs() < 1e-3, "asin({x})");
                assert!((fast.acos(x) - x.acos()).abs() < 1e-3, "acos({x})");
            }
        }
        for &(y, x) in &[(1.0, 2.0), (-1.0, 2.0), (1.0, -2.0), (-1.0, -2.0)] {
            assert!((fast.atan2(y, x) - y.atan2(x)).abs() < 1e-3, "atan2({y},{x})");
        }
    }
}
