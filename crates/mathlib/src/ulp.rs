//! Units-in-the-last-place helpers used by accuracy tests and by the
//! experiment reports (digit/ULP differences of inconsistent results).

/// The value of one ULP at `x` (the distance to the next representable
/// number away from zero). Returns NaN for NaN and infinity for infinities.
pub fn ulp_of(x: f64) -> f64 {
    if x.is_nan() || x.is_infinite() {
        return f64::NAN;
    }
    let ax = x.abs();
    let next = f64::from_bits(ax.to_bits() + 1);
    next - ax
}

/// Distance between two finite doubles measured in representable values
/// (the "ULP distance"). Returns `u64::MAX` when the values straddle NaN or
/// have opposite signs and are not both (near) zero.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    if a == b {
        return 0;
    }
    // Map to a monotone integer line: negative floats are reflected so that
    // ordering of bit patterns matches ordering of values.
    fn key(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_add(bits.wrapping_neg())
        } else {
            bits
        }
    }
    let (ka, kb) = (key(a), key(b));
    ka.abs_diff(kb)
}

/// True when `a` and `b` are within `max_ulps` representable values of each
/// other (or both NaN).
pub fn within_ulps(a: f64, b: f64, max_ulps: u64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    ulp_distance(a, b) <= max_ulps
}

/// Relative error `|a - b| / |b|`, with sensible handling of zero and
/// non-finite reference values.
pub fn relative_error(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    if a.is_nan() || b.is_nan() {
        return f64::INFINITY;
    }
    if b == 0.0 {
        return a.abs();
    }
    ((a - b) / b).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_of_one_is_machine_epsilon_related() {
        assert_eq!(ulp_of(1.0), f64::EPSILON);
        assert!(ulp_of(0.0) > 0.0);
        assert!(ulp_of(f64::NAN).is_nan());
        assert!(ulp_of(f64::INFINITY).is_nan());
    }

    #[test]
    fn ulp_distance_counts_representable_steps() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        let next = f64::from_bits(1.0f64.to_bits() + 1);
        assert_eq!(ulp_distance(1.0, next), 1);
        assert_eq!(ulp_distance(next, 1.0), 1);
        assert_eq!(ulp_distance(1.0, f64::NAN), u64::MAX);
    }

    #[test]
    fn ulp_distance_crosses_zero_correctly() {
        let pos = f64::from_bits(1); // smallest positive subnormal
        let neg = -pos;
        assert_eq!(ulp_distance(pos, neg), 2);
        assert_eq!(ulp_distance(0.0, pos), 1);
        assert_eq!(ulp_distance(-0.0, 0.0), 0);
    }

    #[test]
    fn within_ulps_and_relative_error() {
        assert!(within_ulps(1.0, 1.0 + f64::EPSILON, 1));
        assert!(!within_ulps(1.0, 1.1, 4));
        assert!(within_ulps(f64::NAN, f64::NAN, 0));
        assert_eq!(relative_error(2.0, 2.0), 0.0);
        assert!(relative_error(2.0 + 1e-10, 2.0) < 1e-9);
        assert_eq!(relative_error(3.0, 0.0), 3.0);
        assert!(relative_error(f64::NAN, 1.0).is_infinite());
    }
}
