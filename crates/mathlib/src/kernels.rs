//! Shared numeric kernels: polynomial evaluation, argument reduction and
//! split constants used by the device and fast-math libraries.
//!
//! Everything here is written from scratch (no calls into the platform
//! libm), so the [`crate::DeviceMathLib`] built on top of it is a genuinely
//! independent implementation whose results legitimately differ from the
//! host library by a few ULP — the same situation as CUDA's math library
//! versus glibc.

/// Evaluate a polynomial with Horner's scheme. `coeffs` are ordered from the
/// highest degree to the constant term.
pub fn horner(x: f64, coeffs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &c in coeffs {
        acc = acc * x + c;
    }
    acc
}

/// Evaluate a polynomial with Horner's scheme using fused multiply-adds,
/// which is how device code generators typically emit polynomial kernels.
pub fn horner_fma(x: f64, coeffs: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for &c in coeffs {
        acc = acc.mul_add(x, c);
    }
    acc
}

/// ln(2) split into a high part (exact in the top bits) and a low
/// correction, for Cody–Waite style reductions.
pub const LN2_HI: f64 = 6.93147180369123816490e-01;
/// Low part of ln(2).
pub const LN2_LO: f64 = 1.90821492927058770002e-10;
/// ln(2) as a single double.
pub const LN2: f64 = std::f64::consts::LN_2;
/// log2(e).
pub const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// π/2 split into three parts for Cody–Waite reduction.
pub const PIO2_1: f64 = 1.57079632673412561417e+00;
/// Second part of π/2.
pub const PIO2_2: f64 = 6.07710050650619224932e-11;
/// Third part of π/2.
pub const PIO2_3: f64 = 2.02226624879595063154e-21;
/// 2/π.
pub const TWO_OVER_PI: f64 = std::f64::consts::FRAC_2_PI;

/// Reduce `x` to `(quadrant, r)` with `x = quadrant * π/2 + r` and
/// `|r| <= π/4`. Uses a three-term Cody–Waite reduction, which is accurate
/// for the argument magnitudes generated programs produce; astronomically
/// large arguments fall back to a coarser modulo reduction first.
pub fn reduce_pio2(x: f64) -> (i64, f64) {
    if !x.is_finite() {
        return (0, f64::NAN);
    }
    let mut x = x;
    // Coarse pre-reduction for very large magnitudes so that the Cody–Waite
    // multiplier below stays exactly representable.
    if x.abs() > 1.0e9 {
        let tau = 2.0 * std::f64::consts::PI;
        x = x.rem_euclid(tau);
        if x > std::f64::consts::PI {
            x -= tau;
        }
    }
    let k = (x * TWO_OVER_PI).round();
    let r = ((x - k * PIO2_1) - k * PIO2_2) - k * PIO2_3;
    (k as i64, r)
}

/// sin kernel on the reduced interval |r| ≤ π/4 (degree-13 minimax-style
/// Taylor polynomial).
pub fn sin_kernel(r: f64) -> f64 {
    const S: [f64; 6] = [
        1.58962301576546568060e-10,  // r^13
        -2.50507477628578072866e-08, // r^11
        2.75573136213857245213e-06,  // r^9
        -1.98412698295895385996e-04, // r^7
        8.33333333332211858878e-03,  // r^5
        -1.66666666666666307295e-01, // r^3
    ];
    let z = r * r;
    let p = horner(z, &S);
    r + r * z * p
}

/// cos kernel on the reduced interval |r| ≤ π/4.
pub fn cos_kernel(r: f64) -> f64 {
    const C: [f64; 6] = [
        -1.13596475577881948265e-11, // r^14
        2.08757232129817482790e-09,  // r^12
        -2.75573141792967388112e-07, // r^10
        2.48015872888517179954e-05,  // r^8
        -1.38888888888730564116e-03, // r^6
        4.16666666666666019037e-02,  // r^4
    ];
    let z = r * r;
    let p = horner(z, &C);
    1.0 - 0.5 * z + z * z * p
}

/// exp kernel: e^r for |r| ≤ ln(2)/2, via a degree-14 Taylor series
/// evaluated with Horner + FMA (the truncation error of the omitted r^15
/// term is far below one ULP on this interval).
pub fn exp_kernel(r: f64) -> f64 {
    const E: [f64; 15] = [
        1.0 / 87_178_291_200.0, // r^14 / 14!
        1.0 / 6_227_020_800.0,
        1.0 / 479_001_600.0,
        1.0 / 39_916_800.0,
        1.0 / 3_628_800.0,
        1.0 / 362_880.0,
        1.0 / 40_320.0,
        1.0 / 5_040.0,
        1.0 / 720.0,
        1.0 / 120.0,
        1.0 / 24.0,
        1.0 / 6.0,
        0.5,
        1.0,
        1.0,
    ];
    horner_fma(r, &E)
}

/// log kernel: ln(m) for m in [sqrt(1/2), sqrt(2)], via the atanh series
/// ln(m) = 2·(s + s³/3 + s⁵/5 + ...) with s = (m-1)/(m+1).
pub fn log_kernel(m: f64) -> f64 {
    let s = (m - 1.0) / (m + 1.0);
    let z = s * s;
    const L: [f64; 9] = [
        1.0 / 19.0,
        1.0 / 17.0,
        1.0 / 15.0,
        1.0 / 13.0,
        1.0 / 11.0,
        1.0 / 9.0,
        1.0 / 7.0,
        1.0 / 5.0,
        1.0 / 3.0,
    ];
    let p = horner(z, &L);
    2.0 * (s + s * z * p)
}

/// Decompose a positive finite double into `(mantissa, exponent)` with
/// mantissa in `[1, 2)`, like `frexp` scaled by 2. Subnormals are
/// pre-scaled so the decomposition is exact for them as well.
pub fn split_mantissa_exp(x: f64) -> (f64, i32) {
    debug_assert!(x > 0.0 && x.is_finite());
    let mut x = x;
    let mut extra = 0i32;
    if x < f64::MIN_POSITIVE {
        // Scale subnormals into the normal range by 2^64.
        x *= 18446744073709551616.0;
        extra = -64;
    }
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let mantissa = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    (mantissa, exp + extra)
}

/// 2^k for integer k, saturating to 0 / +inf outside the representable
/// exponent range.
pub fn pow2i(k: i64) -> f64 {
    if k < -1074 {
        0.0
    } else if k > 1023 {
        f64::INFINITY
    } else if k >= -1022 {
        f64::from_bits(((k + 1023) as u64) << 52)
    } else {
        // Subnormal result: build it in two steps.
        f64::from_bits(1u64 << (k + 1074) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp::relative_error;

    #[test]
    fn horner_matches_direct_evaluation() {
        // p(x) = 2x^2 + 3x + 4
        let p = |x: f64| 2.0 * x * x + 3.0 * x + 4.0;
        for &x in &[0.0, 1.0, -2.5, 13.0] {
            assert!((horner(x, &[2.0, 3.0, 4.0]) - p(x)).abs() < 1e-12);
            assert!((horner_fma(x, &[2.0, 3.0, 4.0]) - p(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn reduction_keeps_remainder_small() {
        for i in 0..2000 {
            let x = (i as f64) * 0.37 - 350.0;
            let (_k, r) = reduce_pio2(x);
            assert!(r.abs() <= std::f64::consts::FRAC_PI_4 + 1e-9, "x={x} r={r}");
        }
        let (_, r) = reduce_pio2(f64::NAN);
        assert!(r.is_nan());
    }

    #[test]
    fn kernels_are_accurate_on_their_intervals() {
        for i in -100..=100 {
            let r = (i as f64) / 100.0 * std::f64::consts::FRAC_PI_4;
            assert!(relative_error(sin_kernel(r), r.sin()) < 1e-14, "sin r={r}");
            assert!(relative_error(cos_kernel(r), r.cos()) < 1e-14, "cos r={r}");
        }
        for i in -100..=100 {
            let r = (i as f64) / 100.0 * 0.35;
            assert!(relative_error(exp_kernel(r), r.exp()) < 1e-14, "exp r={r}");
        }
        for i in 0..=100 {
            let m = 0.75 + (i as f64) / 100.0 * 0.65;
            assert!(relative_error(log_kernel(m), m.ln()) < 1e-13, "log m={m}");
        }
    }

    #[test]
    fn mantissa_exponent_split_reconstructs_value() {
        for &x in &[1.0, 0.3, 123456.789, 1e-300, 5e-320, f64::MIN_POSITIVE / 8.0] {
            let (m, e) = split_mantissa_exp(x);
            assert!((1.0..2.0).contains(&m), "mantissa {m} for {x}");
            let rebuilt = m * pow2i(e as i64);
            assert_eq!(rebuilt.to_bits(), x.to_bits(), "x={x}");
        }
    }

    #[test]
    fn pow2i_covers_full_exponent_range() {
        assert_eq!(pow2i(0), 1.0);
        assert_eq!(pow2i(10), 1024.0);
        assert_eq!(pow2i(-1), 0.5);
        assert_eq!(pow2i(1024), f64::INFINITY);
        assert_eq!(pow2i(-1075), 0.0);
        assert_eq!(pow2i(-1074), f64::from_bits(1));
        // Note: `2f64.powi(-1030)` itself underflows to 0 (it computes the
        // reciprocal of an overflowing positive power), so compare against
        // powf which handles the subnormal range correctly.
        assert_eq!(pow2i(-1030), 2f64.powf(-1030.0));
    }
}
