//! # llm4fp-suite
//!
//! Umbrella crate of the LLM4FP reproduction workspace. It re-exports every
//! member crate under one roof so that the runnable examples in `examples/`
//! and the cross-crate integration tests in `tests/` have a single,
//! convenient dependency.
//!
//! The individual crates are:
//!
//! * [`fpir`] — program IR (AST, printers, parser, validation, inputs)
//! * [`mathlib`] — host / device / fast-math libraries
//! * [`compiler`] — the virtual compiler (configs, passes, interpreter)
//! * [`generator`] — Varity generator, prompts, simulated LLM, mutation
//! * [`difftest`] — differential-testing matrix and aggregation
//! * [`metrics`] — CodeBLEU and clone-detection diversity metrics
//! * [`core`] — the LLM4FP campaign framework and report rendering
//! * [`orchestrator`] — sharded parallel campaign engine (worker pools,
//!   result caching, persistent resumable runs, multi-campaign scheduling)
//! * [`extcc`] — the real-compiler (gcc/clang) harness

pub use llm4fp as core;
pub use llm4fp_compiler as compiler;
pub use llm4fp_difftest as difftest;
pub use llm4fp_extcc as extcc;
pub use llm4fp_fpir as fpir;
pub use llm4fp_generator as generator;
pub use llm4fp_mathlib as mathlib;
pub use llm4fp_metrics as metrics;
pub use llm4fp_orchestrator as orchestrator;

/// Version of the reproduction workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
