//! Property-based tests (proptest) over the core invariants of the
//! reproduction: printer/parser round trips, interpreter determinism,
//! comparison/classification laws, math-library accuracy bounds and
//! CodeBLEU bounds.

use proptest::prelude::*;

use llm4fp_suite::compiler::{compile, CompilerConfig, CompilerId, OptLevel};
use llm4fp_suite::difftest::{classify, digit_difference, ValueClass};
use llm4fp_suite::fpir::{parse_compute, to_compute_source, validate, Precision};
use llm4fp_suite::generator::{InputGenerator, VarityGenerator};
use llm4fp_suite::mathlib::{ulp_distance, DeviceMathLib, FastMathLib, HostLibm, MathLib};
use llm4fp_suite::metrics::{codebleu, CodeBleuWeights};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every Varity-generated program is valid, and printing → parsing →
    /// printing is a fixpoint of the source text.
    #[test]
    fn varity_programs_round_trip_through_printer_and_parser(seed in 0u64..5_000) {
        let program = VarityGenerator::new(seed).generate();
        prop_assert!(validate(&program).is_empty());
        let printed = to_compute_source(&program);
        let reparsed = parse_compute(&printed).unwrap();
        prop_assert!(validate(&reparsed).is_empty());
        prop_assert_eq!(to_compute_source(&reparsed), printed);
    }

    /// Virtual execution is deterministic: compiling and running the same
    /// program twice under the same configuration yields identical bits, and
    /// the strict configuration agrees across host compilers for programs
    /// without math calls.
    #[test]
    fn virtual_execution_is_deterministic(seed in 0u64..2_000, cfg_index in 0usize..18) {
        let program = VarityGenerator::new(seed).generate();
        let inputs = InputGenerator::new(seed ^ 0xabcd).generate(&program);
        let config = CompilerConfig::full_matrix()[cfg_index];
        let a = compile(&program, config).unwrap().execute(&inputs);
        let b = compile(&program, config).unwrap().execute(&inputs);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.bits(), y.bits()),
            (Err(x), Err(y)) => prop_assert_eq!(format!("{x}"), format!("{y}")),
            (x, y) => prop_assert!(false, "nondeterministic outcome: {x:?} vs {y:?}"),
        }
    }

    /// Value classification is total and consistent with IEEE predicates.
    #[test]
    fn classification_matches_ieee_predicates(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let class = classify(v);
        match class {
            ValueClass::NaN => prop_assert!(v.is_nan()),
            ValueClass::PosInf => prop_assert!(v.is_infinite() && v > 0.0),
            ValueClass::NegInf => prop_assert!(v.is_infinite() && v < 0.0),
            ValueClass::Zero => prop_assert!(v == 0.0),
            ValueClass::Real => prop_assert!(v.is_finite() && v != 0.0),
        }
    }

    /// Digit differences are symmetric, bounded by the precision width, and
    /// zero exactly for identical bit patterns.
    #[test]
    fn digit_difference_laws(a in any::<u64>(), b in any::<u64>()) {
        let d64 = digit_difference(a, b, Precision::F64);
        prop_assert_eq!(d64, digit_difference(b, a, Precision::F64));
        prop_assert!(d64 <= 16);
        prop_assert_eq!(d64 == 0, a == b);
        let d32 = digit_difference(a, b, Precision::F32);
        prop_assert!(d32 <= 8);
        prop_assert!(d32 <= d64);
    }

    /// ULP distance is symmetric and zero only for equal values (treating
    /// +0 and −0 as equal).
    #[test]
    fn ulp_distance_laws(a in -1.0e300f64..1.0e300, b in -1.0e300f64..1.0e300) {
        prop_assert_eq!(ulp_distance(a, b), ulp_distance(b, a));
        prop_assert_eq!(ulp_distance(a, a), 0);
        if ulp_distance(a, b) == 0 {
            prop_assert_eq!(a, b);
        }
    }

    /// The device library stays within a few ULP of the host library on the
    /// ranges generated programs exercise; the fast-math library stays within
    /// a coarse relative tolerance but is allowed to be much farther off.
    #[test]
    fn device_and_fast_math_accuracy_bounds(x in -300.0f64..300.0) {
        let host = HostLibm::new();
        let dev = DeviceMathLib::new();
        let fast = FastMathLib::new();
        prop_assert!(ulp_distance(dev.exp(x.min(200.0)), host.exp(x.min(200.0))) <= 16);
        prop_assert!((dev.sin(x) - host.sin(x)).abs() <= 1e-13 * host.sin(x).abs().max(1e-10));
        prop_assert!((dev.tanh(x) - host.tanh(x)).abs() <= 1e-12);
        if x > 0.0 {
            prop_assert!(ulp_distance(dev.log(x), host.log(x)) <= 16);
            let rel = ((fast.log(x) - host.log(x)) / host.log(x).abs().max(1e-6)).abs();
            prop_assert!(rel < 1e-2, "fast log too far off at {x}: {rel}");
        }
        prop_assert!((fast.sin(x) - host.sin(x)).abs() < 1e-4);
    }

    /// CodeBLEU is bounded in [0, 1], reflexively (near) 1, and defined for
    /// arbitrary pairs of generated programs.
    #[test]
    fn codebleu_bounds_and_reflexivity(seed_a in 0u64..1_000, seed_b in 0u64..1_000) {
        let a = to_compute_source(&VarityGenerator::new(seed_a).generate());
        let b = to_compute_source(&VarityGenerator::new(seed_b).generate());
        let weights = CodeBleuWeights::default();
        let ab = codebleu(&a, &b, weights).combined;
        prop_assert!((0.0..=1.0).contains(&ab));
        let aa = codebleu(&a, &a, weights).combined;
        prop_assert!(aa > 0.999, "self-similarity must be ~1, got {aa}");
    }

    /// Compiled artifacts never panic on arbitrary scalar inputs: they either
    /// execute (possibly producing NaN/Inf) or report a structured error.
    #[test]
    fn execution_is_total_over_inputs(x in proptest::num::f64::ANY, level in 0usize..6) {
        let program = parse_compute(
            "void compute(double x) {\n\
             comp = log(x) + sqrt(x) / (x - 1.0);\n\
             comp += exp(x / 1.0e3) * sin(x);\n\
             }",
        ).unwrap();
        let inputs = llm4fp_suite::fpir::InputSet::new()
            .with("x", llm4fp_suite::fpir::InputValue::Fp(x));
        let config = CompilerConfig::new(CompilerId::Nvcc, OptLevel::ALL[level]);
        let artifact = compile(&program, config).unwrap();
        let result = artifact.execute(&inputs);
        prop_assert!(result.is_ok());
    }
}
