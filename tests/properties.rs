//! Property-based tests (proptest) over the core invariants of the
//! reproduction: printer/parser round trips, interpreter determinism,
//! comparison/classification laws, math-library accuracy bounds,
//! CodeBLEU bounds, and the successful-set merge algebra the
//! orchestrator's cross-shard feedback exchange relies on.

use proptest::prelude::*;

use llm4fp_suite::compiler::interp::DEFAULT_FUEL;
use llm4fp_suite::compiler::{
    compile, CompilerConfig, CompilerId, ExecScratch, OptLevel, SealMode,
};
use llm4fp_suite::core::SuccessfulSet;
use llm4fp_suite::difftest::{classify, digit_difference, ValueClass};
use llm4fp_suite::fpir::{parse_compute, to_compute_source, validate, Precision};
use llm4fp_suite::generator::{InputGenerator, VarityGenerator};
use llm4fp_suite::mathlib::{ulp_distance, DeviceMathLib, FastMathLib, HostLibm, MathLib};
use llm4fp_suite::metrics::{codebleu, CodeBleuWeights};

/// Build three small successful sets from one seed, drawing sources from
/// an eight-program alphabet so cross-set structural duplicates are the
/// norm rather than the exception (the regime the exchange barrier's
/// dedup actually operates in).
fn three_sets(seed: u64) -> (SuccessfulSet, SuccessfulSet, SuccessfulSet) {
    let alphabet: Vec<String> = (0..8)
        .map(|i| format!("void compute(double x) {{ comp = x * {i}.5 + sin(x / {i}.25); }}"))
        .collect();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut make = |max_len: usize| {
        let mut set = SuccessfulSet::new();
        for _ in 0..next() % (max_len + 1) {
            set.insert(&alphabet[next() % alphabet.len()]);
        }
        set
    };
    (make(6), make(6), make(6))
}

/// The structural-hash multiset of a successful set, order-insensitive.
fn hash_set_of(set: &SuccessfulSet) -> Vec<u64> {
    let mut hashes: Vec<u64> =
        set.sources().iter().map(|s| llm4fp_suite::fpir::source_hash(s)).collect();
    hashes.sort_unstable();
    hashes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every Varity-generated program is valid, and printing → parsing →
    /// printing is a fixpoint of the source text.
    #[test]
    fn varity_programs_round_trip_through_printer_and_parser(seed in 0u64..5_000) {
        let program = VarityGenerator::new(seed).generate();
        prop_assert!(validate(&program).is_empty());
        let printed = to_compute_source(&program);
        let reparsed = parse_compute(&printed).unwrap();
        prop_assert!(validate(&reparsed).is_empty());
        prop_assert_eq!(to_compute_source(&reparsed), printed);
    }

    /// Virtual execution is deterministic: compiling and running the same
    /// program twice under the same configuration yields identical bits, and
    /// the strict configuration agrees across host compilers for programs
    /// without math calls.
    #[test]
    fn virtual_execution_is_deterministic(seed in 0u64..2_000, cfg_index in 0usize..18) {
        let program = VarityGenerator::new(seed).generate();
        let inputs = InputGenerator::new(seed ^ 0xabcd).generate(&program);
        let config = CompilerConfig::full_matrix()[cfg_index];
        let a = compile(&program, config).unwrap().execute(&inputs);
        let b = compile(&program, config).unwrap().execute(&inputs);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.bits(), y.bits()),
            (Err(x), Err(y)) => prop_assert_eq!(format!("{x}"), format!("{y}")),
            (x, y) => prop_assert!(false, "nondeterministic outcome: {x:?} vs {y:?}"),
        }
    }

    /// Value classification is total and consistent with IEEE predicates.
    #[test]
    fn classification_matches_ieee_predicates(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let class = classify(v);
        match class {
            ValueClass::NaN => prop_assert!(v.is_nan()),
            ValueClass::PosInf => prop_assert!(v.is_infinite() && v > 0.0),
            ValueClass::NegInf => prop_assert!(v.is_infinite() && v < 0.0),
            ValueClass::Zero => prop_assert!(v == 0.0),
            ValueClass::Real => prop_assert!(v.is_finite() && v != 0.0),
        }
    }

    /// Digit differences are symmetric, bounded by the precision width, and
    /// zero exactly for identical bit patterns.
    #[test]
    fn digit_difference_laws(a in any::<u64>(), b in any::<u64>()) {
        let d64 = digit_difference(a, b, Precision::F64);
        prop_assert_eq!(d64, digit_difference(b, a, Precision::F64));
        prop_assert!(d64 <= 16);
        prop_assert_eq!(d64 == 0, a == b);
        let d32 = digit_difference(a, b, Precision::F32);
        prop_assert!(d32 <= 8);
        prop_assert!(d32 <= d64);
    }

    /// ULP distance is symmetric and zero only for equal values (treating
    /// +0 and −0 as equal).
    #[test]
    fn ulp_distance_laws(a in -1.0e300f64..1.0e300, b in -1.0e300f64..1.0e300) {
        prop_assert_eq!(ulp_distance(a, b), ulp_distance(b, a));
        prop_assert_eq!(ulp_distance(a, a), 0);
        if ulp_distance(a, b) == 0 {
            prop_assert_eq!(a, b);
        }
    }

    /// The device library stays within a few ULP of the host library on the
    /// ranges generated programs exercise; the fast-math library stays within
    /// a coarse relative tolerance but is allowed to be much farther off.
    #[test]
    fn device_and_fast_math_accuracy_bounds(x in -300.0f64..300.0) {
        let host = HostLibm::new();
        let dev = DeviceMathLib::new();
        let fast = FastMathLib::new();
        prop_assert!(ulp_distance(dev.exp(x.min(200.0)), host.exp(x.min(200.0))) <= 16);
        prop_assert!((dev.sin(x) - host.sin(x)).abs() <= 1e-13 * host.sin(x).abs().max(1e-10));
        prop_assert!((dev.tanh(x) - host.tanh(x)).abs() <= 1e-12);
        if x > 0.0 {
            prop_assert!(ulp_distance(dev.log(x), host.log(x)) <= 16);
            let rel = ((fast.log(x) - host.log(x)) / host.log(x).abs().max(1e-6)).abs();
            prop_assert!(rel < 1e-2, "fast log too far off at {x}: {rel}");
        }
        prop_assert!((fast.sin(x) - host.sin(x)).abs() < 1e-4);
    }

    /// CodeBLEU is bounded in [0, 1], reflexively (near) 1, and defined for
    /// arbitrary pairs of generated programs.
    #[test]
    fn codebleu_bounds_and_reflexivity(seed_a in 0u64..1_000, seed_b in 0u64..1_000) {
        let a = to_compute_source(&VarityGenerator::new(seed_a).generate());
        let b = to_compute_source(&VarityGenerator::new(seed_b).generate());
        let weights = CodeBleuWeights::default();
        let ab = codebleu(&a, &b, weights).combined;
        prop_assert!((0.0..=1.0).contains(&ab));
        let aa = codebleu(&a, &a, weights).combined;
        prop_assert!(aa > 0.999, "self-similarity must be ~1, got {aa}");
    }

    /// `SuccessfulSet::merge` is associative: merging (a ∪ b) with c gives
    /// exactly the sequence of merging a with (b ∪ c) — not just the same
    /// set, the same insertion order, which the exchange barrier's
    /// shard-order merge depends on for bit-identical broadcasts.
    #[test]
    fn successful_set_merge_is_associative(seed in 0u64..50_000) {
        let (a, b, c) = three_sets(seed);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left.sources(), right.sources());
    }

    /// `SuccessfulSet::merge` is commutative up to ordering: a ∪ b and
    /// b ∪ a contain the same structural set (orders differ — the barrier
    /// fixes one canonical order by merging in shard-index order).
    #[test]
    fn successful_set_merge_is_commutative_up_to_ordering(seed in 0u64..50_000) {
        let (a, b, _) = three_sets(seed);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.len(), ba.len());
        prop_assert_eq!(hash_set_of(&ab), hash_set_of(&ba));
    }

    /// `SuccessfulSet::merge` is idempotent: re-merging anything already
    /// merged adds nothing and changes nothing — re-broadcasting the same
    /// pool at a barrier (as a resumed run does) is a no-op.
    #[test]
    fn successful_set_merge_is_idempotent(seed in 0u64..50_000) {
        let (a, b, _) = three_sets(seed);
        let mut ab = a.clone();
        ab.merge(&b);
        let before = ab.sources().to_vec();
        prop_assert_eq!(ab.merge(&b), 0);
        prop_assert_eq!(ab.merge(&a), 0);
        let copy = ab.clone();
        prop_assert_eq!(ab.merge(&copy), 0);
        prop_assert_eq!(ab.sources(), &before[..]);
    }

    /// The sealed register VM is pinned bit-identical to the reference
    /// interpreter — with the seal-time peephole optimizer on *and* off:
    /// for random valid programs × configurations × inputs both sealing
    /// modes agree with the interpreter on exact value bits, step counts,
    /// and error variants — including the precise fuel budget at which
    /// execution starves — and the optimizer never grows the stream.
    #[test]
    fn sealed_vm_matches_reference_interpreter(
        seed in 0u64..3_000,
        cfg_index in 0usize..18,
        starve in 0u64..3,
    ) {
        let program = VarityGenerator::new(seed).generate();
        let inputs = InputGenerator::new(seed ^ 0x51ed).generate(&program);
        let config = CompilerConfig::full_matrix()[cfg_index];
        let artifact = compile(&program, config).unwrap();
        // Varity's naming conventions never produce the dynamically
        // ambiguous int/scalar shadowing that refuses to seal.
        let raw = artifact
            .seal_with(SealMode::Raw)
            .expect("varity programs always seal");
        let optimized = artifact
            .seal_with(SealMode::Optimized)
            .expect("varity programs always seal");
        prop_assert!(optimized.instruction_count() <= raw.instruction_count());
        prop_assert!(optimized.register_count() <= raw.register_count());
        let mut scratch = ExecScratch::new();
        let reference = artifact.execute(&inputs);
        for sealed in [&raw, &optimized] {
            let vm = sealed.execute_into(&inputs, DEFAULT_FUEL, &mut scratch);
            match (&reference, &vm) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.bits(), b.bits());
                    prop_assert_eq!(a.steps, b.steps);
                    prop_assert_eq!(a.precision, b.precision);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                other => prop_assert!(false, "back ends disagree: {other:?}"),
            }
            // Starve both engines at the same budget and require the same
            // outcome (fuel exhaustion at the identical point, or identical
            // completion when the budget suffices).
            if let Ok(full) = &reference {
                let fuel = match starve {
                    0 => 0,
                    1 => full.steps / 2,
                    _ => full.steps.saturating_sub(1),
                };
                let a = artifact.execute_with_fuel(&inputs, fuel);
                let b = sealed.execute_into(&inputs, fuel, &mut scratch);
                prop_assert_eq!(&a, &b, "fuel {}", fuel);
                if fuel < full.steps {
                    prop_assert_eq!(
                        a.unwrap_err(),
                        llm4fp_suite::compiler::ExecError::FuelExhausted
                    );
                }
            }
        }
    }

    /// `Frontend::seal_matrix` is indistinguishable from 18 independent
    /// seals: per-configuration execution of the shared-layout artifacts
    /// reproduces the independent path bit for bit (and refusals match).
    #[test]
    fn seal_matrix_agrees_with_independent_seals(seed in 0u64..2_000) {
        use llm4fp_suite::compiler::Frontend;
        let program = VarityGenerator::new(seed).generate();
        let inputs = InputGenerator::new(seed ^ 0x3a7).generate(&program);
        let frontend = Frontend::new(&program).unwrap();
        let matrix = CompilerConfig::full_matrix();
        let batch = frontend.seal_matrix(&matrix);
        let mut scratch = ExecScratch::new();
        for (&config, batched) in matrix.iter().zip(&batch) {
            let single = frontend.seal(config);
            match (batched, &single) {
                (Ok(b), Ok(s)) => {
                    prop_assert_eq!(b.instruction_count(), s.instruction_count());
                    prop_assert_eq!(b.register_count(), s.register_count());
                    let vb = b.execute_into(&inputs, DEFAULT_FUEL, &mut scratch);
                    let vs = s.execute_into(&inputs, DEFAULT_FUEL, &mut scratch);
                    // Compare by bits — NaN results are `!=` themselves
                    // through ExecResult's f64 field.
                    match (vb, vs) {
                        (Ok(x), Ok(y)) => {
                            prop_assert_eq!(x.bits(), y.bits());
                            prop_assert_eq!(x.steps, y.steps);
                        }
                        (Err(x), Err(y)) => prop_assert_eq!(x, y),
                        other => prop_assert!(false, "outcomes diverge: {:?}", other),
                    }
                }
                (Err(b), Err(s)) => prop_assert_eq!(b, s),
                other => prop_assert!(false, "paths disagree under {}: {:?}", config, other),
            }
        }
    }

    /// The streaming structural hash equals hashing the rendered source's
    /// token stream — `program_hash` never drifts from `source_hash` over
    /// the canonical rendering (which PR 1's input derivation and result
    /// caching both key on).
    #[test]
    fn streaming_program_hash_matches_rendered_source_hash(seed in 0u64..5_000) {
        let program = VarityGenerator::new(seed).generate();
        let rendered = to_compute_source(&program);
        prop_assert_eq!(
            llm4fp_suite::fpir::program_hash(&program),
            llm4fp_suite::fpir::source_hash(&rendered)
        );
    }

    /// The backend-aware result cache is semantically transparent on the
    /// virtual backend: a campaign sharing a cache (including one
    /// pre-warmed by an identical campaign, so every lookup hits) is
    /// bit-identical to the uncached sequential driver.
    #[test]
    fn result_cache_is_semantically_transparent_for_the_virtual_backend(seed in 0u64..5_000) {
        use std::sync::Arc;
        use llm4fp_suite::core::{ApproachKind, Campaign, CampaignConfig, CampaignRunner};
        use llm4fp_suite::difftest::ResultCache;

        let config = CampaignConfig::new(ApproachKind::DirectPrompt)
            .with_budget(6)
            .with_seed(seed)
            .with_threads(1);
        let plain = Campaign::new(config.clone()).run();
        let cache = Arc::new(ResultCache::new());
        for pass in 0..2 {
            let mut runner = CampaignRunner::new(config.clone()).with_cache(Arc::clone(&cache));
            for index in 0..config.programs {
                runner.run_one(index);
            }
            let cached = runner.finish();
            prop_assert_eq!(&cached.records, &plain.records, "pass {}", pass);
            prop_assert_eq!(&cached.aggregates, &plain.aggregates, "pass {}", pass);
            prop_assert_eq!(&cached.sources, &plain.sources, "pass {}", pass);
        }
        // Second pass hit on every valid program.
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, 2 * plain.sources.len() as u64);
        prop_assert!(stats.hits >= plain.sources.len() as u64);
    }

    /// Compiled artifacts never panic on arbitrary scalar inputs: they either
    /// execute (possibly producing NaN/Inf) or report a structured error.
    #[test]
    fn execution_is_total_over_inputs(x in proptest::num::f64::ANY, level in 0usize..6) {
        let program = parse_compute(
            "void compute(double x) {\n\
             comp = log(x) + sqrt(x) / (x - 1.0);\n\
             comp += exp(x / 1.0e3) * sin(x);\n\
             }",
        ).unwrap();
        let inputs = llm4fp_suite::fpir::InputSet::new()
            .with("x", llm4fp_suite::fpir::InputValue::Fp(x));
        let config = CompilerConfig::new(CompilerId::Nvcc, OptLevel::ALL[level]);
        let artifact = compile(&program, config).unwrap();
        let result = artifact.execute(&inputs);
        prop_assert!(result.is_ok());
    }
}

// External-backend property: few cases, because every case spawns real
// (mock-compiler) processes for each non-duplicate program.
#[cfg(unix)]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Cache transparency holds on the external backend too: campaigns
    /// against the hermetic `fakecc` toolchain produce bit-identical
    /// results whether or not a (backend-scoped) result cache serves the
    /// duplicate programs.
    #[test]
    fn result_cache_is_semantically_transparent_for_the_external_backend(seed in 0u64..1_000) {
        use std::sync::Arc;
        use llm4fp_suite::core::{
            ApproachKind, BackendSpec, Campaign, CampaignConfig, CampaignRunner,
            ExternalBackendSpec,
        };
        use llm4fp_suite::difftest::ResultCache;
        use llm4fp_suite::extcc::fakecc;

        let dir = std::env::temp_dir()
            .join("llm4fp-suite-proptests")
            .join(format!("extcc-{seed}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = ExternalBackendSpec::new(fakecc::install_pair(&dir).expect("install fakecc"));
        let config = CampaignConfig::new(ApproachKind::DirectPrompt)
            .with_budget(5)
            .with_seed(seed)
            .with_threads(1)
            .with_backend(BackendSpec::External(spec));

        let plain = Campaign::new(config.clone()).run();
        let cache = Arc::new(ResultCache::new());
        let mut runner = CampaignRunner::new(config.clone()).with_cache(Arc::clone(&cache));
        for index in 0..config.programs {
            runner.run_one(index);
        }
        let cached = runner.finish();
        prop_assert_eq!(&cached.records, &plain.records);
        prop_assert_eq!(&cached.aggregates, &plain.aggregates);
        prop_assert_eq!(&cached.sources, &plain.sources);
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, plain.sources.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
