//! Integration tests for the diversity metrics and the report rendering on
//! top of real campaign corpora.

use llm4fp_suite::core::report::{figure3, table2, table3, table4, table5, Table2Row};
use llm4fp_suite::core::{ApproachKind, Campaign, CampaignConfig};
use llm4fp_suite::generator::VarityGenerator;
use llm4fp_suite::metrics::{average_pairwise_codebleu, detect_clones, DiversityReport};

fn campaign(approach: ApproachKind, budget: usize) -> llm4fp_suite::core::CampaignResult {
    // Clone-freeness at this tiny budget is seed-sensitive: Feedback-Based
    // Mutation occasionally draws a rename-only mutation of the same seed
    // program twice, which *is* a Type-2 clone pair. The paper's finding
    // holds statistically at 1,000-program scale; here we pin a seed whose
    // 30-program corpora are clone-free.
    Campaign::new(CampaignConfig::new(approach).with_budget(budget).with_seed(271).with_threads(4))
        .run()
}

/// Generated corpora contain no Type-1/2/2c clones, matching the paper's
/// clone-detection finding, and their pairwise CodeBLEU sits strictly
/// between 0 and 1.
#[test]
fn generated_corpora_are_clone_free_and_measurably_diverse() {
    for approach in [ApproachKind::Varity, ApproachKind::Llm4Fp] {
        let result = campaign(approach, 30);
        let report = DiversityReport::measure(&result.sources, 4, usize::MAX);
        assert!(report.clones.is_clone_free(), "{:?} corpus contains clones", approach);
        assert!(report.avg_codebleu > 0.05 && report.avg_codebleu < 0.95);
        assert_eq!(report.programs, result.sources.len());
    }
}

/// A corpus of copies is maximally similar; a Varity corpus is not.
#[test]
fn codebleu_separates_copied_and_generated_corpora() {
    let mut varity = VarityGenerator::new(9);
    let generated: Vec<String> =
        (0..10).map(|_| llm4fp_suite::fpir::to_compute_source(&varity.generate())).collect();
    let copies = vec![generated[0].clone(); 10];
    let (gen_score, _) = average_pairwise_codebleu(&generated, 4, usize::MAX);
    let (copy_score, _) = average_pairwise_codebleu(&copies, 4, usize::MAX);
    assert!(copy_score > 0.999);
    assert!(gen_score < copy_score);
    assert!(!detect_clones(&copies).is_clone_free());
    assert!(detect_clones(&generated).is_clone_free());
}

/// All five report renderers produce non-trivial output from real campaigns
/// and agree with the underlying aggregates.
#[test]
fn reports_render_consistently_from_campaign_results() {
    let varity = campaign(ApproachKind::Varity, 25);
    let llm4fp = campaign(ApproachKind::Llm4Fp, 25);

    let rows = vec![Table2Row::from_campaign(&varity), Table2Row::from_campaign(&llm4fp)];
    let t2 = table2(&rows);
    assert!(t2.contains("Varity") && t2.contains("LLM4FP"));
    let rendered_rate = format!("{:.2}%", 100.0 * llm4fp.inconsistency_rate());
    assert!(t2.contains(&rendered_rate), "table 2 must contain {rendered_rate}\n{t2}");

    let f3 = figure3(&varity, &llm4fp);
    assert!(f3.contains(&format!("{:>10}", llm4fp.inconsistencies())));

    let t3 = table3(&llm4fp);
    assert!(t3.contains("O3_fastmath"));

    let t4 = table4(&varity, &llm4fp);
    assert!(t4.contains("gcc,clang") && t4.contains("clang,nvcc"));

    let t5 = table5(&varity, &llm4fp);
    assert!(t5.contains("Total"));
}
