//! Cross-crate integration tests: generation → compilation → differential
//! testing → aggregation, exercised through the public APIs only.

use llm4fp_suite::compiler::{compile, CompilerConfig, CompilerId, OptLevel};
use llm4fp_suite::core::{ApproachKind, Campaign, CampaignConfig};
use llm4fp_suite::difftest::{DiffTester, ValueClass};
use llm4fp_suite::fpir::{parse_compute, to_compute_source, validate, InputSet, InputValue};
use llm4fp_suite::generator::{
    InputGenerator, LlmClient, PromptBuilder, SimulatedLlm, VarityGenerator,
};

/// A generated program survives the full round trip: print → parse →
/// validate → compile under every configuration → execute.
#[test]
fn generated_programs_flow_through_the_entire_pipeline() {
    let mut llm = SimulatedLlm::new(404);
    let prompts = PromptBuilder::new(Default::default());
    let mut inputs = InputGenerator::new(405);
    for _ in 0..10 {
        let source = llm.generate(&prompts.grammar_based()).source;
        let program = parse_compute(&source).expect("LLM output parses");
        assert!(validate(&program).is_empty());
        let reprinted = to_compute_source(&program);
        let reparsed = parse_compute(&reprinted).unwrap();
        assert_eq!(to_compute_source(&reparsed), reprinted, "printer/parser fixpoint");

        let input_set = inputs.generate(&program);
        for config in [
            CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma),
            CompilerConfig::new(CompilerId::Clang, OptLevel::O2),
            CompilerConfig::new(CompilerId::Nvcc, OptLevel::O3Fastmath),
        ] {
            let artifact = compile(&program, config).expect("valid programs compile");
            artifact.execute(&input_set).expect("generated programs execute");
        }
    }
}

/// The strict (O0_nofma) host configurations form a consistent reference:
/// identical results for pure-arithmetic programs across compilers.
#[test]
fn strict_level_is_a_stable_reference_point() {
    let mut varity = VarityGenerator::new(777);
    let mut inputs = InputGenerator::new(778);
    let mut checked = 0;
    for _ in 0..20 {
        let program = varity.generate();
        if program.math_call_count() > 0 {
            continue; // math calls legitimately differ between host and device
        }
        let input_set = inputs.generate(&program);
        let gcc = compile(&program, CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma))
            .unwrap()
            .execute(&input_set);
        let clang = compile(&program, CompilerConfig::new(CompilerId::Clang, OptLevel::O0Nofma))
            .unwrap()
            .execute(&input_set);
        if let (Ok(a), Ok(b)) = (gcc, clang) {
            assert_eq!(a.bits(), b.bits(), "{}", to_compute_source(&program));
            checked += 1;
        }
    }
    assert!(checked > 0, "at least one pure-arithmetic program must be compared");
}

/// Host-vs-device differential testing finds the classic FMA contraction
/// difference and classifies it as a {Real, Real} inconsistency.
#[test]
fn difftest_detects_and_classifies_fma_contraction() {
    let program =
        parse_compute("void compute(double x, double y, double z) { comp = x * y + z; }").unwrap();
    let x = 1.0 + 2f64.powi(-29);
    let inputs = InputSet::new()
        .with("x", InputValue::Fp(x))
        .with("y", InputValue::Fp(x))
        .with("z", InputValue::Fp(-1.0));
    let result = DiffTester::new().run(&program, &inputs);
    assert!(result.triggered_inconsistency());
    assert!(result
        .records
        .iter()
        .all(|r| r.class_a == ValueClass::Real && r.class_b == ValueClass::Real));
    // The strict level never participates: both sides use no FMA there.
    assert!(result.records.iter().all(|r| r.level != OptLevel::O0Nofma));
}

/// A full mini-campaign reproduces the paper's headline ordering (RQ1) and
/// its host-vs-device structure (RQ3) at reduced scale.
#[test]
fn mini_campaigns_reproduce_the_headline_orderings() {
    let run = |approach| {
        Campaign::new(CampaignConfig::new(approach).with_budget(50).with_seed(99).with_threads(4))
            .run()
    };
    let varity = run(ApproachKind::Varity);
    let llm4fp = run(ApproachKind::Llm4Fp);

    // RQ1: LLM4FP detects more inconsistencies than Varity.
    assert!(llm4fp.inconsistencies() > varity.inconsistencies());
    assert!(llm4fp.inconsistency_rate() > varity.inconsistency_rate());

    // RQ2: the dominant LLM4FP kind is {Real, Real}.
    let real_real =
        llm4fp_suite::difftest::InconsistencyKind::new(ValueClass::Real, ValueClass::Real);
    assert!(llm4fp.aggregates.kinds.fraction(real_real) > 0.5);

    // RQ3: host-device pairs are more inconsistent than the host-host pair.
    let programs = llm4fp.aggregates.programs;
    let levels = llm4fp.config.levels.len();
    let hh = llm4fp.aggregates.pair_level.pair_rate(
        (CompilerId::Gcc, CompilerId::Clang),
        programs,
        levels,
    );
    let hd = llm4fp.aggregates.pair_level.pair_rate(
        (CompilerId::Gcc, CompilerId::Nvcc),
        programs,
        levels,
    );
    assert!(hd > hh, "host-device {hd} should exceed host-host {hh}");

    // RQ4: O3_fastmath diverges from O0_nofma more than O1 does, for gcc.
    let o1 = llm4fp.aggregates.vs_baseline.rate(CompilerId::Gcc, OptLevel::O1, programs);
    let fast = llm4fp.aggregates.vs_baseline.rate(CompilerId::Gcc, OptLevel::O3Fastmath, programs);
    assert!(fast >= o1);
}

/// Feedback mutation reuses programs from the successful set and produces
/// different-but-valid variants.
#[test]
fn feedback_loop_reuses_successful_programs() {
    let result = Campaign::new(
        CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(40).with_seed(5).with_threads(4),
    )
    .run();
    assert!(!result.successful_sources.is_empty());
    let feedback_count =
        result.records.iter().filter(|r| r.strategy == "feedback-mutation").count();
    let grammar_count = result.records.iter().filter(|r| r.strategy == "grammar-based").count();
    assert!(feedback_count > 0, "the feedback strategy must be exercised");
    assert!(grammar_count > 0, "grammar-based generation must still occur (p = 0.3)");
    // Roughly 70% of post-warmup generations should be feedback-based; allow
    // a wide tolerance for the small budget.
    assert!(feedback_count > grammar_count / 2);
}
