//! Corpus and golden tests of the seal-time bytecode optimizer
//! (`compiler::peephole`): optimized instruction streams never exceed the
//! raw streams on a whole Varity corpus × the full configuration matrix,
//! idiom-shaped programs shrink by pinned amounts, and the sealed-matrix
//! driver keeps its results bit-identical whichever mode seals.

use llm4fp_suite::compiler::{compile, CompilerConfig, CompilerId, Frontend, OptLevel, SealMode};
use llm4fp_suite::fpir::{parse_compute, InputSet, InputValue};
use llm4fp_suite::generator::{InputGenerator, VarityGenerator};

/// Corpus pin: across 64 Varity programs and all 18 configurations the
/// optimizer never grows an instruction stream or a register file, and it
/// shrinks a substantial share of them (constant folding reaches `O0`
/// streams the tree-level pipeline leaves untouched).
#[test]
fn optimized_instruction_counts_never_exceed_raw_on_a_varity_corpus() {
    let matrix = CompilerConfig::full_matrix();
    let mut sealed_pairs = 0usize;
    let mut shrunk = 0usize;
    let mut instrs_raw = 0usize;
    let mut instrs_opt = 0usize;
    for seed in 0..64u64 {
        let program = VarityGenerator::new(seed * 13 + 5).generate();
        let frontend = Frontend::new(&program).expect("varity programs validate");
        let raw = frontend.seal_matrix_with(
            &matrix,
            SealMode::Raw,
            &mut llm4fp_suite::compiler::SealScratch::new(),
        );
        let optimized = frontend.seal_matrix(&matrix);
        for ((&config, raw), optimized) in matrix.iter().zip(&raw).zip(&optimized) {
            let (raw, optimized) = match (raw, optimized) {
                (Ok(r), Ok(o)) => (r, o),
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "{config}: refusals must not depend on the mode");
                    continue;
                }
                other => panic!("{config}: modes disagree about sealability: {other:?}"),
            };
            sealed_pairs += 1;
            assert!(
                optimized.instruction_count() <= raw.instruction_count(),
                "{config} seed {seed}: optimizer grew the stream ({} > {})",
                optimized.instruction_count(),
                raw.instruction_count()
            );
            assert!(
                optimized.register_count() <= raw.register_count(),
                "{config} seed {seed}: optimizer grew the register file"
            );
            if optimized.instruction_count() < raw.instruction_count() {
                shrunk += 1;
            }
            instrs_raw += raw.instruction_count();
            instrs_opt += optimized.instruction_count();
        }
    }
    assert!(sealed_pairs > 1000, "corpus unexpectedly small: {sealed_pairs}");
    assert!(shrunk * 4 >= sealed_pairs, "optimizer shrank only {shrunk}/{sealed_pairs} streams");
    assert!(
        instrs_opt < instrs_raw,
        "corpus-wide instruction total did not shrink ({instrs_opt} vs {instrs_raw})"
    );
}

/// Golden shrinkage on idiom programs: hand-pinned instruction counts for
/// shapes the generator emits constantly. The pins are exact so any
/// regression in a pass (or an accidental semantic widening) shows up as
/// a count change, not a silent perf loss.
#[test]
fn idiom_programs_shrink_by_pinned_amounts() {
    let strict = CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma);
    // (source, raw count, optimized count) under gcc@O0_nofma — the
    // configuration whose tree pipeline does nothing, so every win below
    // is the bytecode optimizer's alone.
    let golden = [
        // Horner-step idiom with literal coefficients: the coefficient
        // chain folds; the `x`-dependent ops stay.
        (
            "void compute(double x) { comp = (1.5 + 2.5 + 0.25) * x + (2.0 * 3.0); }",
            14usize,
            8usize,
        ),
        // Scaled accumulation in a loop: loop structure (burns, jumps,
        // int slots) is untouched; the invariant constant product folds.
        (
            "void compute(double *a) {\n\
             for (int i = 0; i < 8; ++i) { comp += a[i] * (0.5 * 0.125); }\n\
             }",
            16,
            14,
        ),
        // Buffer rotation with a degenerate modulus: `i % 1` folds to a
        // constant index, and the seeded constant prefix folds away.
        (
            "void compute(double *a) {\n\
             double buf[1] = {0.0};\n\
             for (int i = 0; i < 4; ++i) { buf[i % 1] += 1.0 + 1.0 + a[i]; }\n\
             comp = buf[0];\n\
             }",
            21,
            19,
        ),
    ];
    for (src, raw_expected, optimized_expected) in golden {
        let program = parse_compute(src).unwrap();
        let artifact = compile(&program, strict).unwrap();
        let raw = artifact.seal_with(SealMode::Raw).unwrap();
        let optimized = artifact.seal_with(SealMode::Optimized).unwrap();
        assert_eq!(raw.instruction_count(), raw_expected, "raw stream drifted for:\n{src}");
        assert_eq!(
            optimized.instruction_count(),
            optimized_expected,
            "optimized stream drifted for:\n{src}"
        );
        // And the shrunk stream still computes the identical bits.
        let inputs = InputSet::new()
            .with("x", InputValue::Fp(1.375))
            .with("a", InputValue::FpArray(vec![1.0, -2.0, 3.0, -4.0, 5.5, 0.25, 7.0, 8.125]));
        let a = raw.execute(&inputs).unwrap();
        let b = optimized.execute(&inputs).unwrap();
        assert_eq!(a.bits(), b.bits());
        assert_eq!(a.steps, b.steps);
        assert_eq!(artifact.execute(&inputs).unwrap().bits(), b.bits());
    }
}

/// The matrix driver produces identical `ProgramDiffResult`s under both
/// seal modes on generated programs (campaign-shaped A/B of the knob the
/// experiment binaries expose as `--no-seal-opt`). Outcomes are compared
/// bit-wise rather than by `==` because NaN results compare unequal to
/// themselves through `Outcome`'s `f64` field.
#[test]
fn difftester_results_are_mode_independent_on_generated_programs() {
    use llm4fp_suite::difftest::DiffTester;
    for seed in 0..12u64 {
        let program = VarityGenerator::new(seed ^ 0x5ea1).generate();
        let inputs = InputGenerator::new(seed).generate(&program);
        let optimized = DiffTester::new().with_threads(2).run(&program, &inputs);
        let raw =
            DiffTester::new().with_threads(2).with_seal_mode(SealMode::Raw).run(&program, &inputs);
        assert_eq!(optimized.program_id, raw.program_id);
        assert_eq!(optimized.records.len(), raw.records.len(), "seed {seed}");
        for (a, b) in optimized.records.iter().zip(&raw.records) {
            assert_eq!((a.level, a.pair), (b.level, b.pair));
            assert_eq!((a.bits_a, a.bits_b), (b.bits_a, b.bits_b), "seed {seed}");
            assert_eq!(a.digit_diff, b.digit_diff);
        }
        assert_eq!(optimized.comparisons_performed, raw.comparisons_performed);
        assert_eq!(optimized.outcomes.len(), raw.outcomes.len());
        for (a, b) in optimized.outcomes.iter().zip(&raw.outcomes) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.outcome.bits(), b.outcome.bits(), "seed {seed} {}", a.config);
            assert_eq!(a.outcome.is_ok(), b.outcome.is_ok());
        }
    }
}
