//! Offline shim for the `serde` facade.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this crate provides the subset of serde the workspace actually relies
//! on: the `Serialize` / `Deserialize` traits (simplified to a concrete
//! JSON-like [`Value`] model rather than serde's generic serializer
//! architecture), the same-named derive macros (re-exported from the
//! sibling `serde_derive` shim), and a `de::DeserializeOwned` alias. The
//! `serde_json` shim prints and parses [`Value`] as real JSON, so
//! `#[derive(Serialize, Deserialize)]` + `serde_json::to_string` /
//! `from_str` round-trip exactly as calling code expects.
//!
//! Deliberate divergences from real serde, chosen because this shim
//! controls both ends of every (de)serialization in the workspace:
//!
//! * maps with non-string keys serialize as arrays of `[key, value]`
//!   pairs instead of erroring;
//! * non-finite floats serialize as the strings `"NaN"` / `"inf"` /
//!   `"-inf"` instead of erroring.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::time::Duration;

/// JSON object representation used by [`Value::Obj`].
pub type Map = BTreeMap<String, Value>;

/// A JSON number. Integers keep full 64-bit precision (JSON text holds
/// them exactly; `f64` would not above 2^53 — and bit patterns like
/// `DiffRecord::bits_a` need all 64 bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }
}

/// The JSON data model every shimmed (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Arr(Vec<Value>),
    Obj(Map),
}

impl Value {
    pub fn as_obj(&self) -> Option<&Map> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// (De)serialization error: a plain message, like `serde_json::Error`
/// renders to.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Mirror of `serde::de` for the one bound the workspace writes
/// (`serde::de::DeserializeOwned`). The shimmed `Deserialize` has no
/// borrowed variant, so every implementor is already "owned".
pub mod de {
    pub use crate::Deserialize;

    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::msg(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::I(*self as i64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::msg(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Num(Number::F(f))
                } else if f.is_nan() {
                    Value::Str("NaN".to_string())
                } else if f > 0.0 {
                    Value::Str("inf".to_string())
                } else {
                    Value::Str("-inf".to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    Value::Str(s) => match s.as_str() {
                        "NaN" => Ok(<$t>::NAN),
                        "inf" => Ok(<$t>::INFINITY),
                        "-inf" => Ok(<$t>::NEG_INFINITY),
                        _ => Err(Error::msg("expected number for float")),
                    },
                    _ => Err(Error::msg("expected number for float")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for PathBuf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(PathBuf::from(String::from_value(v)?))
    }
}

/// Matches real serde's `{ "secs": .., "nanos": .. }` encoding.
impl Serialize for Duration {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("secs".to_string(), Value::Num(Number::U(self.as_secs())));
        m.insert("nanos".to_string(), Value::Num(Number::U(self.subsec_nanos() as u64)));
        Value::Obj(m)
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_obj().ok_or_else(|| Error::msg("expected object for Duration"))?;
        let secs = u64::from_value(m.get("secs").unwrap_or(&Value::Null))?;
        let nanos = u32::from_value(m.get("nanos").unwrap_or(&Value::Null))?;
        Ok(Duration::new(secs, nanos))
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr().ok_or_else(|| Error::msg("expected array"))?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_arr().ok_or_else(|| Error::msg("expected array for tuple"))?;
                let expected = [$($n),+].len();
                if a.len() != expected {
                    return Err(Error::msg("wrong tuple arity"));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Maps serialize as `[[key, value], ...]` so non-string keys (tuples of
/// enums, in this workspace) survive the round trip.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()])).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_arr().ok_or_else(|| Error::msg("expected array for map"))?;
        let mut m = BTreeMap::new();
        for entry in a {
            let pair = entry.as_arr().ok_or_else(|| Error::msg("expected [key, value] pair"))?;
            if pair.len() != 2 {
                return Err(Error::msg("expected [key, value] pair"));
            }
            m.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(m)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by their serialized key text.
        let mut entries: Vec<(String, Value, Value)> = self
            .iter()
            .map(|(k, v)| {
                let kv = k.to_value();
                (format!("{kv:?}"), kv, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Arr(entries.into_iter().map(|(_, k, v)| Value::Arr(vec![k, v])).collect())
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_arr().ok_or_else(|| Error::msg("expected array for map"))?;
        let mut m = HashMap::with_capacity(a.len());
        for entry in a {
            let pair = entry.as_arr().ok_or_else(|| Error::msg("expected [key, value] pair"))?;
            if pair.len() != 2 {
                return Err(Error::msg("expected [key, value] pair"));
            }
            m.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(m)
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|t| {
                let tv = t.to_value();
                (format!("{tv:?}"), tv)
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Arr(entries.into_iter().map(|(_, v)| v).collect())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_arr().ok_or_else(|| Error::msg("expected array for set"))?;
        a.iter().map(T::from_value).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
