//! Derive-macro half of the vendored serde shim.
//!
//! Parses the restricted shapes this workspace actually derives on — plain
//! (possibly tuple or unit) structs and enums whose variants are unit,
//! tuple or struct-like, all without generic parameters — and emits impls of
//! the simplified `serde::Serialize` / `serde::Deserialize` traits defined
//! in `vendor/serde`. Written against raw `proc_macro` because `syn` and
//! `quote` are not available offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    code.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    code.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum Fields {
    /// `struct S;`
    Unit,
    /// `struct S(A, B);` — field count only.
    Tuple(usize),
    /// `struct S { a: A, b: B }`
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic types ({name})");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                None => Fields::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Skip leading attributes (`#[...]`, including doc comments) and
/// visibility modifiers (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Parse `a: A, b: B, ...` capturing field names. Types are skipped with
/// angle-bracket awareness so commas inside `BTreeMap<K, V>` don't split.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other}"),
        }
        skip_to_comma(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

/// Count top-level comma-separated entries (tuple struct / tuple variant
/// fields), skipping per-field attributes and visibility.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_to_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

/// Advance past one type/expression up to (and past) the next top-level
/// comma. `<`/`>` are plain puncts in token streams, so nest on them.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        skip_to_comma(&tokens, &mut i);
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let mut b = String::from("::serde::Value::Arr(vec![");
                    for k in 0..*n {
                        let _ = write!(b, "::serde::Serialize::to_value(&self.{k}),");
                    }
                    b.push_str("])");
                    b
                }
                Fields::Named(names) => {
                    let mut b = String::from("{ let mut m = ::serde::Map::new();");
                    for f in names {
                        let _ = write!(
                            b,
                            "m.insert(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}));"
                        );
                    }
                    b.push_str("::serde::Value::Obj(m) }");
                    b
                }
            };
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let mut b = String::from("::serde::Value::Arr(vec![");
                            for bind in &binds {
                                let _ = write!(b, "::serde::Serialize::to_value({bind}),");
                            }
                            b.push_str("])");
                            b
                        };
                        let _ = write!(
                            arms,
                            "{name}::{vn}({}) => {{ let mut m = ::serde::Map::new(); \
                             m.insert(String::from(\"{vn}\"), {inner}); ::serde::Value::Obj(m) }},",
                            binds.join(",")
                        );
                    }
                    Fields::Named(fields) => {
                        let mut body = String::from("{ let mut fm = ::serde::Map::new();");
                        for f in fields {
                            let _ = write!(
                                body,
                                "fm.insert(String::from(\"{f}\"), ::serde::Serialize::to_value({f}));"
                            );
                        }
                        let _ = write!(
                            body,
                            "let mut m = ::serde::Map::new(); \
                             m.insert(String::from(\"{vn}\"), ::serde::Value::Obj(fm)); \
                             ::serde::Value::Obj(m) }}"
                        );
                        let _ = write!(arms, "{name}::{vn} {{ {} }} => {body},", fields.join(","));
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ \
                 match self {{ {arms} }} }} }}"
            );
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let mut b = format!(
                        "{{ let a = v.as_arr().ok_or_else(|| ::serde::Error::msg(\
                         \"expected array for {name}\"))?; \
                         if a.len() != {n} {{ return Err(::serde::Error::msg(\
                         \"wrong tuple arity for {name}\")); }} Ok({name}("
                    );
                    for k in 0..*n {
                        let _ = write!(b, "::serde::Deserialize::from_value(&a[{k}])?,");
                    }
                    b.push_str(")) }");
                    b
                }
                Fields::Named(names) => {
                    let mut b = format!(
                        "{{ let m = v.as_obj().ok_or_else(|| ::serde::Error::msg(\
                         \"expected object for {name}\"))?; Ok({name} {{"
                    );
                    for f in names {
                        let _ = write!(
                            b,
                            "{f}: ::serde::Deserialize::from_value(\
                             m.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,"
                        );
                    }
                    b.push_str("}) }");
                    b
                }
            };
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> \
                 {{ {body} }} }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            let mut has_unit = false;
            let mut has_data = false;
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        has_unit = true;
                        let _ = write!(unit_arms, "\"{vn}\" => Ok({name}::{vn}),");
                    }
                    Fields::Tuple(n) => {
                        has_data = true;
                        if *n == 1 {
                            let _ = write!(
                                data_arms,
                                "if let Some(inner) = m.get(\"{vn}\") {{ \
                                 return Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)); }}"
                            );
                        } else {
                            let mut ctor = String::new();
                            for k in 0..*n {
                                let _ = write!(ctor, "::serde::Deserialize::from_value(&a[{k}])?,");
                            }
                            let _ = write!(
                                data_arms,
                                "if let Some(inner) = m.get(\"{vn}\") {{ \
                                 let a = inner.as_arr().ok_or_else(|| ::serde::Error::msg(\
                                 \"expected array for {name}::{vn}\"))?; \
                                 if a.len() != {n} {{ return Err(::serde::Error::msg(\
                                 \"wrong arity for {name}::{vn}\")); }} \
                                 return Ok({name}::{vn}({ctor})); }}"
                            );
                        }
                    }
                    Fields::Named(fields) => {
                        has_data = true;
                        let mut ctor = String::new();
                        for f in fields {
                            let _ = write!(
                                ctor,
                                "{f}: ::serde::Deserialize::from_value(\
                                 fm.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,"
                            );
                        }
                        let _ = write!(
                            data_arms,
                            "if let Some(inner) = m.get(\"{vn}\") {{ \
                             let fm = inner.as_obj().ok_or_else(|| ::serde::Error::msg(\
                             \"expected object for {name}::{vn}\"))?; \
                             return Ok({name}::{vn} {{ {ctor} }}); }}"
                        );
                    }
                }
            }
            let str_arm = if has_unit {
                format!(
                    "::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} \
                     _ => Err(::serde::Error::msg(\"unknown variant of {name}\")), }},"
                )
            } else {
                String::new()
            };
            let obj_arm = if has_data {
                format!(
                    "::serde::Value::Obj(m) => {{ {data_arms} \
                     Err(::serde::Error::msg(\"unknown variant of {name}\")) }},"
                )
            } else {
                String::new()
            };
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> \
                 {{ match v {{ {str_arm} {obj_arm} \
                 _ => Err(::serde::Error::msg(\"unexpected value for {name}\")), }} }} }}"
            );
        }
    }
    out
}
