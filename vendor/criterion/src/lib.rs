//! Offline shim for `criterion`: a minimal wall-clock timing harness with
//! the `benchmark_group` / `bench_function` / `Bencher::iter` API the
//! workspace's benches use. No statistics engine or plots — each
//! benchmark runs `sample_size` timed samples after a short warm-up and
//! prints min / mean / max per iteration.
//!
//! One CLI flag is supported (upstream criterion spells it the same way):
//! `--save-baseline <path>` writes every benchmark's mean seconds per
//! iteration as a flat JSON object (`{"group/name": seconds, ...}`) so CI
//! can diff two runs (`cargo run -p llm4fp-bench --bin bench_compare`).
//! Pass it through cargo: `cargo bench --bench x -- --save-baseline f.json`.

pub use std::hint::black_box;

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Means recorded by every benchmark of the process, in execution order.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_bench(&name.into(), sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark (criterion enforces a
    /// minimum of 10; this shim accepts any positive value).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name.into()), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up sample (not reported).
    let mut bencher = Bencher { sample: Duration::ZERO, iters: 0 };
    f(&mut bencher);

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { sample: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        if bencher.iters > 0 {
            per_iter.push(bencher.sample.as_secs_f64() / bencher.iters as f64);
        }
    }
    if per_iter.is_empty() {
        println!("{label}: no iterations recorded");
        return;
    }
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{label}: [{} {} {}] ({} samples)",
        format_time(min),
        format_time(mean),
        format_time(max),
        per_iter.len()
    );
    RESULTS.lock().unwrap().push((label.to_string(), mean));
}

/// Honor `--save-baseline <path>` from the process arguments: write the
/// recorded benchmark means as JSON. `criterion_main!` calls this after
/// every group has run; no-op when the flag is absent.
pub fn finalize() {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg != "--save-baseline" {
            continue;
        }
        let Some(path) = args.next() else {
            eprintln!("criterion shim: --save-baseline needs a file path");
            std::process::exit(2);
        };
        let results = RESULTS.lock().unwrap();
        let entries: Vec<String> = results
            .iter()
            .map(|(label, mean)| {
                let escaped = label.replace('\\', "\\\\").replace('"', "\\\"");
                format!("  \"{escaped}\": {mean}")
            })
            .collect();
        let json = format!("{{\n{}\n}}\n", entries.join(",\n"));
        match std::fs::write(&path, json) {
            Ok(()) => println!("saved baseline ({} benchmarks) to {path}", results.len()),
            Err(e) => {
                eprintln!("criterion shim: cannot write baseline {path}: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Measurement context passed to each benchmark closure.
pub struct Bencher {
    sample: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one invocation of `f` and fold it into the current sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.sample += start.elapsed();
        self.iters += 1;
    }
}

/// Expands to a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the listed groups, then honoring
/// `--save-baseline` (see [`finalize`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("counts", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 3, "warm-up + samples should run the closure, got {runs}");
    }
}
