//! Offline shim for `serde_json`: prints and parses the vendored
//! `serde::Value` model as real JSON. Supports the workspace's usage:
//! `to_string`, `to_string_pretty`, `to_value`, `from_str`, `from_value`.

pub use serde::{Error, Map, Number, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Convert any serializable value into the [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserialize from an in-memory [`Value`].
pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(n, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(a) => write_seq(a.iter(), out, indent, depth, '[', ']', |item, out, d| {
            write_value(item, out, indent, d)
        }),
        Value::Obj(m) => write_seq(m.iter(), out, indent, depth, '{', '}', |(k, item), out, d| {
            write_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(item, out, indent, d)
        }),
    }
}

fn write_seq<I, F>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: Iterator,
    F: FnMut(I::Item, &mut String, usize),
{
    out.push(open);
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        write_item(item, out, depth + 1);
    }
    if !first {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * depth));
        }
    }
    out.push(close);
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::U(u) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{u}"));
        }
        Number::I(i) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Number::F(f) => {
            // Rust's shortest-round-trip float formatting; force a fraction
            // or exponent so the text re-parses as a float, keeping integer
            // vs float distinguishable (u64 bit patterns must not collapse).
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n' | b't' | b'f') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // slicing at char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Obj(Map::from([
            ("a".to_string(), Value::Num(Number::U(u64::MAX))),
            ("b".to_string(), Value::Num(Number::I(-7))),
            ("c".to_string(), Value::Num(Number::F(0.1))),
            ("d".to_string(), Value::Str("he\"llo\n".to_string())),
            ("e".to_string(), Value::Arr(vec![Value::Null, Value::Bool(true), Value::Bool(false)])),
        ]));
        let text = to_string(&v).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn u64_bit_patterns_survive_exactly() {
        let bits: u64 = 0xfff8_0000_0000_0001;
        let text = to_string(&bits).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(bits, back);
    }

    #[test]
    fn floats_round_trip_shortest_repr() {
        for f in [0.1, -0.0, 1e-300, 123456789.125, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {text}");
        }
        let nan: f64 = from_str(&to_string(&f64::NAN).unwrap()).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
