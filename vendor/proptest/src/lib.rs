//! Offline shim for `proptest`: supports the surface `tests/properties.rs`
//! uses — the `proptest!` macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]` header, strategies
//! built from primitive ranges, `any::<T>()`, `proptest::num::f64::ANY`,
//! and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Sampling is deterministic (SplitMix64 seeded per test from the test
//! name) rather than persisted-regression-file based; failures report the
//! case number so a failing case can be reproduced by re-running the test.

use std::ops::Range;

/// Mirror of `proptest::test_runner::Config` for the one constructor used.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic value source handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + pick as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        Range { start: self.start as f64, end: self.end as f64 }.sample(rng) as f32
    }
}

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the default strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

/// Mirror of `proptest::num` for the `f64::ANY` strategy (arbitrary bit
/// patterns: subnormals, infinities and NaNs included).
pub mod num {
    pub mod f64 {
        pub struct Any;

        impl crate::Strategy for Any {
            type Value = f64;
            fn sample(&self, rng: &mut crate::TestRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }

        pub const ANY: Any = Any;
    }

    pub mod f32 {
        pub struct Any;

        impl crate::Strategy for Any {
            type Value = f32;
            fn sample(&self, rng: &mut crate::TestRng) -> f32 {
                f32::from_bits(rng.next_u64() as u32)
            }
        }

        pub const ANY: Any = Any;
    }
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// The `proptest!` block macro: expands each contained test into a normal
/// `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@expand ($config); $($rest)*);
    };
    (
        @expand ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case} of {} failed in `{}`",
                            config.cases,
                            stringify!($name)
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 0u64..100, y in -2.0f64..2.0) {
            prop_assert!(x < 100);
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn any_is_full_width(bits in any::<u64>()) {
            // Statistically, 32 samples of 64 bits are never all small.
            let _ = bits;
        }
    }

    proptest! {
        #[test]
        fn default_config_applies(v in 0usize..10) {
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn rng_streams_differ_per_test_name() {
        let a = crate::TestRng::from_name("a").next_u64();
        let b = crate::TestRng::from_name("b").next_u64();
        assert_ne!(a, b);
    }
}
