//! Offline shim for `rand` 0.8, covering the API surface this workspace
//! uses: `StdRng::seed_from_u64`, the `Rng` extension methods `gen`,
//! `gen_bool`, `gen_range`, and `SliceRandom::choose`/`shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, so streams for
//! adjacent seeds are decorrelated (campaigns derive per-component and
//! per-shard seeds by XOR-ing small constants into a base seed). The
//! algorithm differs from real `StdRng` (ChaCha12), so absolute sequences
//! differ from upstream rand — everything in this workspace only relies on
//! determinism and statistical quality, not on specific streams.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is shimmed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Uniform sample from a half-open or inclusive range. Generic over
    /// the output type (like upstream rand) so untyped integer literals
    /// infer from the use site.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Standard-distribution sampling (stand-in for rand's
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from. The single blanket
/// impl per range shape (mirroring upstream rand) lets type inference
/// unify `T` with the range's element type.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform u64 in `[0, bound)` by widening multiply (negligible bias for
/// the small bounds used here, and deterministic).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let v = <$t as SampleUniform>::sample_inclusive(rng, lo, hi);
                // Floating rounding can land exactly on `hi` in rare
                // cases; fall back to `lo` to keep the half-open contract.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Random selection from slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[below(rng, self.len() as u64) as usize])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    /// (Real `StdRng` is ChaCha12; see the crate docs for why that is fine
    /// here.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// Snapshot the generator's internal state (four xoshiro256++
        /// words). Together with [`StdRng::from_state`] this gives exact
        /// stream checkpointing: a generator restored from a snapshot
        /// produces the same sequence the snapshotted one would have.
        /// (Upstream rand offers this via serde on the rng types; the shim
        /// exposes the words directly.)
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot. The
        /// all-zero state is invalid for xoshiro and is replaced by the
        /// same fallback `seed_from_u64` uses, so restoring any snapshot
        /// of a real generator is lossless.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return StdRng { s: [0x9e37_79b9_7f4a_7c15, 1, 2, 3] };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Mirror of `rand::seq`.
pub mod seq {
    pub use crate::SliceRandom;
}

/// Mirror of `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed_and_decorrelated_across_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_snapshots_restore_the_exact_stream() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            rng.next_u64();
        }
        let snapshot = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let mut restored = StdRng::from_state(snapshot);
        let replay: Vec<u64> = (0..32).map(|_| restored.next_u64()).collect();
        assert_eq!(tail, replay);
        // The all-zero state is mapped to the non-degenerate fallback.
        assert_ne!(StdRng::from_state([0; 4]).next_u64(), 0);
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let u = rng.gen_range(2usize..7);
            assert!((2..7).contains(&u));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
        // All integer values in a small range should be reachable.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_and_shuffle_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = [1, 2, 3, 4, 5];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), items.len());
        assert!(Vec::<i32>::new().choose(&mut rng).is_none());

        let mut shuffled = items;
        shuffle_until_different(&mut shuffled, &mut rng);
        let mut sorted = shuffled;
        sorted.sort();
        assert_eq!(sorted, items);
    }

    fn shuffle_until_different(xs: &mut [i32; 5], rng: &mut StdRng) {
        for _ in 0..16 {
            xs.shuffle(rng);
            if xs != &[1, 2, 3, 4, 5] {
                return;
            }
        }
        panic!("shuffle never changed the order");
    }
}
