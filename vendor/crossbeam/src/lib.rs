//! Offline shim for `crossbeam`: the scoped-thread API this workspace
//! uses (`crossbeam::thread::scope` + `Scope::spawn` + handle `join`),
//! implemented over `std::thread::scope`.
//!
//! Divergence from real crossbeam: the closure passed to `spawn` receives
//! `()` instead of a nested `&Scope` (every call site here ignores the
//! argument), and `scope` only returns `Err` if the closure itself
//! panics — which std's scope turns into a panic first, so in practice it
//! always returns `Ok` like crossbeam does when all spawned threads are
//! joined by the caller.

pub mod thread {
    use std::any::Any;

    /// Handle to one spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Spawning surface handed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope. The closure receives `()`
        /// (crossbeam passes a nested scope; no call site here uses it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(move || f(())) }
        }
    }

    /// Create a scope in which borrowing spawned threads can be created.
    /// All spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let mut total = 0u64;
        thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            for h in handles {
                total += h.join().expect("worker panicked");
            }
        })
        .expect("scope failed");
        assert_eq!(total, 21);
    }

    #[test]
    fn panics_surface_through_join() {
        thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .expect("scope failed");
    }
}
